open Remy_sim

let feq = Alcotest.float 1e-9

let test_constant_delay_fifo () =
  let engine = Engine.create () in
  let got = ref [] in
  let dl =
    Delay_line.create engine ~delay:0.5 ~filler:(-1) (fun v ->
        got := (Engine.now engine, v) :: !got)
  in
  Engine.schedule engine 0. (fun () ->
      Delay_line.push dl 1;
      Delay_line.push dl 2);
  Engine.schedule engine 0.25 (fun () -> Delay_line.push dl 3);
  Engine.run engine ~until:2.;
  (match List.rev !got with
  | [ (t1, v1); (t2, v2); (t3, v3) ] ->
    Alcotest.(check int) "first value" 1 v1;
    Alcotest.(check int) "second value" 2 v2;
    Alcotest.(check int) "third value" 3 v3;
    Alcotest.check feq "first at push + delay" 0.5 t1;
    Alcotest.check feq "same-instant pushes keep order" 0.5 t2;
    Alcotest.check feq "later push arrives later" 0.75 t3
  | l -> Alcotest.failf "expected 3 deliveries, got %d" (List.length l));
  Alcotest.(check int) "line drained" 0 (Delay_line.length dl)

let test_ring_grows_transparently () =
  let engine = Engine.create () in
  let seen = ref 0 in
  let next_expected = ref 0 in
  let dl =
    Delay_line.create engine ~delay:0.1 ~filler:(-1) (fun v ->
        Alcotest.(check int) "in push order" !next_expected v;
        incr next_expected;
        incr seen)
  in
  let n = 1000 in
  Engine.schedule engine 0. (fun () ->
      for i = 0 to n - 1 do
        Delay_line.push dl i
      done);
  Engine.schedule engine 0.05 (fun () ->
      Alcotest.(check int) "all in flight" n (Delay_line.length dl));
  Engine.run engine ~until:1.;
  Alcotest.(check int) "all delivered" n !seen;
  Alcotest.(check int) "none left" 0 (Delay_line.length dl)

let test_reentrant_push () =
  (* The handler itself pushes (like a receiver handing an ack to the
     reverse-path line): each hop must land exactly one delay later. *)
  let engine = Engine.create () in
  let times = ref [] in
  let dl_ref = ref None in
  let dl =
    Delay_line.create engine ~delay:0.5 ~filler:(-1) (fun v ->
        times := Engine.now engine :: !times;
        if v < 3 then Delay_line.push (Option.get !dl_ref) (v + 1))
  in
  dl_ref := Some dl;
  Engine.schedule engine 0. (fun () -> Delay_line.push dl 0);
  Engine.run engine ~until:10.;
  Alcotest.(check (list feq)) "one hop per delay" [ 0.5; 1.0; 1.5; 2.0 ]
    (List.rev !times)

let tests =
  [
    Alcotest.test_case "constant delay, FIFO" `Quick test_constant_delay_fifo;
    Alcotest.test_case "ring grows transparently" `Quick
      test_ring_grows_transparently;
    Alcotest.test_case "reentrant push from the handler" `Quick
      test_reentrant_push;
  ]
