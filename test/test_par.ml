open Remy

let test_identity_map () =
  let xs = Array.init 100 Fun.id in
  let ys = Par.map ~domains:4 (fun x -> x * 2) xs in
  Alcotest.(check (array int)) "order preserved" (Array.map (fun x -> x * 2) xs) ys

let test_empty () =
  Alcotest.(check (array int)) "empty" [||] (Par.map ~domains:4 Fun.id [||])

let test_single_domain () =
  let xs = Array.init 10 Fun.id in
  Alcotest.(check (array int)) "domains=1 works" xs (Par.map ~domains:1 Fun.id xs)

let test_more_domains_than_work () =
  let xs = [| 1; 2 |] in
  Alcotest.(check (array int)) "clamped" [| 2; 4 |]
    (Par.map ~domains:64 (fun x -> x * 2) xs)

let test_exception_propagates () =
  (try
     ignore (Par.map ~domains:2 (fun x -> if x = 5 then failwith "boom" else x)
               (Array.init 10 Fun.id));
     Alcotest.fail "expected exception"
   with Failure msg -> Alcotest.(check string) "message" "boom" msg)

let test_matches_sequential () =
  let xs = Array.init 200 (fun i -> float_of_int i) in
  let f x = sin x +. sqrt x in
  Alcotest.(check (array (float 0.))) "parallel = sequential" (Array.map f xs)
    (Par.map ~domains:3 f xs)

(* --- persistent pool ------------------------------------------------- *)

let test_pool_identity () =
  Par.Pool.with_pool ~domains:4 (fun pool ->
      let xs = Array.init 100 Fun.id in
      Alcotest.(check (array int)) "order preserved"
        (Array.map (fun x -> x * 2) xs)
        (Par.Pool.map pool (fun x -> x * 2) xs))

let test_pool_empty () =
  Par.Pool.with_pool ~domains:4 (fun pool ->
      Alcotest.(check (array int)) "empty" [||] (Par.Pool.map pool Fun.id [||]))

let test_pool_reuse_across_batches () =
  (* The whole point of the pool: many submissions over the same
     domains.  Batches of different types and sizes must all come back
     in order. *)
  Par.Pool.with_pool ~domains:3 (fun pool ->
      for batch = 1 to 50 do
        let xs = Array.init (1 + (batch mod 7)) (fun i -> (batch * 100) + i) in
        Alcotest.(check (array int))
          (Printf.sprintf "batch %d" batch)
          (Array.map (fun x -> x + 1) xs)
          (Par.Pool.map pool (fun x -> x + 1) xs)
      done;
      let names = Par.Pool.map pool string_of_int [| 1; 2; 3 |] in
      Alcotest.(check (array string)) "type change" [| "1"; "2"; "3" |] names)

let test_pool_single_domain () =
  Par.Pool.with_pool ~domains:1 (fun pool ->
      let xs = Array.init 10 Fun.id in
      Alcotest.(check (array int)) "domains=1 works" xs (Par.Pool.map pool Fun.id xs))

let test_pool_exception_propagates () =
  Par.Pool.with_pool ~domains:2 (fun pool ->
      (try
         ignore
           (Par.Pool.map pool
              (fun x -> if x = 5 then failwith "boom" else x)
              (Array.init 10 Fun.id));
         Alcotest.fail "expected exception"
       with Failure msg -> Alcotest.(check string) "message" "boom" msg);
      (* The pool survives a failed batch. *)
      Alcotest.(check (array int)) "usable after exception" [| 2; 4 |]
        (Par.Pool.map pool (fun x -> x * 2) [| 1; 2 |]))

let test_pool_matches_sequential () =
  Par.Pool.with_pool ~domains:3 (fun pool ->
      let xs = Array.init 200 (fun i -> float_of_int i) in
      let f x = sin x +. sqrt x in
      Alcotest.(check (array (float 0.))) "pool = sequential" (Array.map f xs)
        (Par.Pool.map pool f xs))

let test_pool_stats () =
  let before = Par.stats () in
  Par.Pool.with_pool ~domains:2 (fun pool ->
      for _ = 1 to 5 do
        ignore (Par.Pool.map pool Fun.id (Array.init 8 Fun.id))
      done);
  let after = Par.stats () in
  Alcotest.(check int) "jobs counted" 5 (after.Par.pool_jobs - before.Par.pool_jobs);
  Alcotest.(check int) "tasks counted" 40
    (after.Par.pool_tasks - before.Par.pool_tasks);
  (* Helper-task split depends on scheduling and core count; it can only
     be bounded. *)
  Alcotest.(check bool) "helper tasks within total" true
    (after.Par.pool_helper_tasks - before.Par.pool_helper_tasks <= 40)

(* --- retries and the watchdog ---------------------------------------- *)

let test_pool_retry_absorbs_transient_failure () =
  (* A task that fails on its first attempt but succeeds on retry: the
     batch must complete with the correct results and count the retry. *)
  let before = Par.stats () in
  let first = Atomic.make true in
  let f x =
    if x = 5 && Atomic.exchange first false then failwith "transient";
    x * 2
  in
  Par.Pool.with_pool ~retries:2 ~domains:2 (fun pool ->
      let ys = Par.Pool.map pool f (Array.init 10 Fun.id) in
      Alcotest.(check (array int)) "results correct despite the fault"
        (Array.init 10 (fun i -> i * 2))
        ys);
  let after = Par.stats () in
  Alcotest.(check int) "one retry recorded" 1
    (after.Par.pool_retries - before.Par.pool_retries)

let test_pool_retry_exhaustion_raises_task_failed () =
  Par.Pool.with_pool ~retries:2 ~domains:2 (fun pool ->
      try
        ignore
          (Par.Pool.map pool
             (fun x -> if x = 3 then failwith "persistent" else x)
             (Array.init 6 Fun.id));
        Alcotest.fail "expected Task_failed"
      with Par.Task_failed { index; attempts; error } ->
        Alcotest.(check int) "failing task index" 3 index;
        Alcotest.(check int) "initial try + 2 retries" 3 attempts;
        Alcotest.(check bool) "original error preserved" true
          (String.length error > 0))

let test_pool_retry_callback () =
  let seen = Atomic.make 0 in
  Par.Pool.with_pool ~retries:1
    ~on_retry:(fun ~task ~attempt _e ->
      ignore task;
      ignore attempt;
      Atomic.incr seen)
    ~domains:2
    (fun pool ->
      try
        ignore (Par.Pool.map pool (fun x -> if x = 0 then failwith "nope" else x) [| 0; 1 |])
      with Par.Task_failed _ -> ());
  Alcotest.(check int) "on_retry fired once" 1 (Atomic.get seen)

let test_pool_zero_retries_keeps_original_exception () =
  (* Back-compat: with the default retries=0 the task's own exception
     propagates, not Task_failed. *)
  Par.Pool.with_pool ~domains:2 (fun pool ->
      try
        ignore (Par.Pool.map pool (fun _ -> failwith "boom") [| 1 |]);
        Alcotest.fail "expected exception"
      with Failure msg -> Alcotest.(check string) "message" "boom" msg)

let test_pool_watchdog_catches_stall () =
  (* One task blocks forever on a helper domain; the submitter's
     watchdog must raise Stalled instead of hanging.  Requires >= 2
     domains so a helper exists to wedge; on a 1-core box the clamp
     leaves only the submitter, which cannot stall — skip there. *)
  if Domain.recommended_domain_count () < 2 then ()
  else begin
    let pool = Par.Pool.create ~stall_timeout_s:0.2 ~domains:2 () in
    let release = Atomic.make false in
    let main = Domain.self () in
    (* Helpers wedge on their first claim; the submitter works through
       its share slowly enough that a helper is sure to claim one, then
       waits in the watchdog loop — which must raise rather than hang. *)
    let f x =
      if Domain.self () <> main then begin
        while not (Atomic.get release) do
          Domain.cpu_relax ()
        done;
        x
      end
      else begin
        Unix.sleepf 0.002;
        x
      end
    in
    (try
       ignore (Par.Pool.map pool f (Array.init 64 Fun.id));
       Alcotest.fail "expected Stalled"
     with Par.Stalled { completed; total; waited_s } ->
       Alcotest.(check int) "total tasks" 64 total;
       Alcotest.(check bool) "some tasks incomplete" true (completed < total);
       Alcotest.(check bool) "waited at least the timeout" true (waited_s >= 0.2));
    (* Unwedge the stuck domain so the test process can exit cleanly;
       the pool itself stays abandoned (no shutdown — it would hang if
       the domain were still stuck). *)
    Atomic.set release true;
    Unix.sleepf 0.05
  end

let test_pool_size_clamped () =
  Par.Pool.with_pool ~domains:64 (fun pool ->
      Alcotest.(check bool) "clamped to hardware" true
        (Par.Pool.size pool <= max 1 (Domain.recommended_domain_count ())))

let tests =
  [
    Alcotest.test_case "identity map" `Quick test_identity_map;
    Alcotest.test_case "empty input" `Quick test_empty;
    Alcotest.test_case "single domain" `Quick test_single_domain;
    Alcotest.test_case "more domains than work" `Quick test_more_domains_than_work;
    Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
    Alcotest.test_case "matches sequential" `Quick test_matches_sequential;
    Alcotest.test_case "pool: identity map" `Quick test_pool_identity;
    Alcotest.test_case "pool: empty input" `Quick test_pool_empty;
    Alcotest.test_case "pool: reuse across batches" `Quick test_pool_reuse_across_batches;
    Alcotest.test_case "pool: single domain" `Quick test_pool_single_domain;
    Alcotest.test_case "pool: exception propagates" `Quick test_pool_exception_propagates;
    Alcotest.test_case "pool: matches sequential" `Quick test_pool_matches_sequential;
    Alcotest.test_case "pool: stats counters" `Quick test_pool_stats;
    Alcotest.test_case "pool: size clamped to hardware" `Quick test_pool_size_clamped;
    Alcotest.test_case "pool: retry absorbs transient failure" `Quick
      test_pool_retry_absorbs_transient_failure;
    Alcotest.test_case "pool: retry exhaustion raises Task_failed" `Quick
      test_pool_retry_exhaustion_raises_task_failed;
    Alcotest.test_case "pool: on_retry callback fires" `Quick test_pool_retry_callback;
    Alcotest.test_case "pool: retries=0 keeps original exception" `Quick
      test_pool_zero_retries_keeps_original_exception;
    Alcotest.test_case "pool: watchdog catches a stalled worker" `Quick
      test_pool_watchdog_catches_stall;
  ]
