open Remy

let test_identity_map () =
  let xs = Array.init 100 Fun.id in
  let ys = Par.map ~domains:4 (fun x -> x * 2) xs in
  Alcotest.(check (array int)) "order preserved" (Array.map (fun x -> x * 2) xs) ys

let test_empty () =
  Alcotest.(check (array int)) "empty" [||] (Par.map ~domains:4 Fun.id [||])

let test_single_domain () =
  let xs = Array.init 10 Fun.id in
  Alcotest.(check (array int)) "domains=1 works" xs (Par.map ~domains:1 Fun.id xs)

let test_more_domains_than_work () =
  let xs = [| 1; 2 |] in
  Alcotest.(check (array int)) "clamped" [| 2; 4 |]
    (Par.map ~domains:64 (fun x -> x * 2) xs)

let test_exception_propagates () =
  (try
     ignore (Par.map ~domains:2 (fun x -> if x = 5 then failwith "boom" else x)
               (Array.init 10 Fun.id));
     Alcotest.fail "expected exception"
   with Failure msg -> Alcotest.(check string) "message" "boom" msg)

let test_matches_sequential () =
  let xs = Array.init 200 (fun i -> float_of_int i) in
  let f x = sin x +. sqrt x in
  Alcotest.(check (array (float 0.))) "parallel = sequential" (Array.map f xs)
    (Par.map ~domains:3 f xs)

(* --- persistent pool ------------------------------------------------- *)

let test_pool_identity () =
  Par.Pool.with_pool ~domains:4 (fun pool ->
      let xs = Array.init 100 Fun.id in
      Alcotest.(check (array int)) "order preserved"
        (Array.map (fun x -> x * 2) xs)
        (Par.Pool.map pool (fun x -> x * 2) xs))

let test_pool_empty () =
  Par.Pool.with_pool ~domains:4 (fun pool ->
      Alcotest.(check (array int)) "empty" [||] (Par.Pool.map pool Fun.id [||]))

let test_pool_reuse_across_batches () =
  (* The whole point of the pool: many submissions over the same
     domains.  Batches of different types and sizes must all come back
     in order. *)
  Par.Pool.with_pool ~domains:3 (fun pool ->
      for batch = 1 to 50 do
        let xs = Array.init (1 + (batch mod 7)) (fun i -> (batch * 100) + i) in
        Alcotest.(check (array int))
          (Printf.sprintf "batch %d" batch)
          (Array.map (fun x -> x + 1) xs)
          (Par.Pool.map pool (fun x -> x + 1) xs)
      done;
      let names = Par.Pool.map pool string_of_int [| 1; 2; 3 |] in
      Alcotest.(check (array string)) "type change" [| "1"; "2"; "3" |] names)

let test_pool_single_domain () =
  Par.Pool.with_pool ~domains:1 (fun pool ->
      let xs = Array.init 10 Fun.id in
      Alcotest.(check (array int)) "domains=1 works" xs (Par.Pool.map pool Fun.id xs))

let test_pool_exception_propagates () =
  Par.Pool.with_pool ~domains:2 (fun pool ->
      (try
         ignore
           (Par.Pool.map pool
              (fun x -> if x = 5 then failwith "boom" else x)
              (Array.init 10 Fun.id));
         Alcotest.fail "expected exception"
       with Failure msg -> Alcotest.(check string) "message" "boom" msg);
      (* The pool survives a failed batch. *)
      Alcotest.(check (array int)) "usable after exception" [| 2; 4 |]
        (Par.Pool.map pool (fun x -> x * 2) [| 1; 2 |]))

let test_pool_matches_sequential () =
  Par.Pool.with_pool ~domains:3 (fun pool ->
      let xs = Array.init 200 (fun i -> float_of_int i) in
      let f x = sin x +. sqrt x in
      Alcotest.(check (array (float 0.))) "pool = sequential" (Array.map f xs)
        (Par.Pool.map pool f xs))

let test_pool_stats () =
  let before = Par.stats () in
  Par.Pool.with_pool ~domains:2 (fun pool ->
      for _ = 1 to 5 do
        ignore (Par.Pool.map pool Fun.id (Array.init 8 Fun.id))
      done);
  let after = Par.stats () in
  Alcotest.(check int) "jobs counted" 5 (after.Par.pool_jobs - before.Par.pool_jobs);
  Alcotest.(check int) "tasks counted" 40
    (after.Par.pool_tasks - before.Par.pool_tasks);
  (* Helper-task split depends on scheduling and core count; it can only
     be bounded. *)
  Alcotest.(check bool) "helper tasks within total" true
    (after.Par.pool_helper_tasks - before.Par.pool_helper_tasks <= 40)

let test_pool_size_clamped () =
  Par.Pool.with_pool ~domains:64 (fun pool ->
      Alcotest.(check bool) "clamped to hardware" true
        (Par.Pool.size pool <= max 1 (Domain.recommended_domain_count ())))

let tests =
  [
    Alcotest.test_case "identity map" `Quick test_identity_map;
    Alcotest.test_case "empty input" `Quick test_empty;
    Alcotest.test_case "single domain" `Quick test_single_domain;
    Alcotest.test_case "more domains than work" `Quick test_more_domains_than_work;
    Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
    Alcotest.test_case "matches sequential" `Quick test_matches_sequential;
    Alcotest.test_case "pool: identity map" `Quick test_pool_identity;
    Alcotest.test_case "pool: empty input" `Quick test_pool_empty;
    Alcotest.test_case "pool: reuse across batches" `Quick test_pool_reuse_across_batches;
    Alcotest.test_case "pool: single domain" `Quick test_pool_single_domain;
    Alcotest.test_case "pool: exception propagates" `Quick test_pool_exception_propagates;
    Alcotest.test_case "pool: matches sequential" `Quick test_pool_matches_sequential;
    Alcotest.test_case "pool: stats counters" `Quick test_pool_stats;
    Alcotest.test_case "pool: size clamped to hardware" `Quick test_pool_size_clamped;
  ]
