(* Observability acceptance tests: histogram quantiles stay within one
   bucket of the exact sorted quantile, merging is order-invariant, the
   span profiler survives nesting and exceptions, cross-domain merges are
   deterministic, manifests round-trip through the record codec, and —
   the load-bearing invariant — turning metrics and profiling on changes
   no simulation output. *)

open Remy_cc
open Remy_sim
module H = Remy_obs.Histogram
module P = Remy_obs.Profiler
module M = Remy_obs.Metrics
module C = Remy_obs.Counters
module R = Remy_obs.Record

(* --- histogram ----------------------------------------------------- *)

(* Exact quantile the histogram approximates: the sorted sample of rank
   [ceil (q * n)] (1-based, clamped to at least 1). *)
let exact_quantile samples q =
  let a = Array.of_list samples in
  Array.sort Float.compare a;
  let n = Array.length a in
  let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int n))) in
  a.(min (n - 1) (rank - 1))

let prop_quantile_error =
  QCheck.Test.make ~name:"quantile within one bucket of exact" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 200) pos_float)
    (fun raw ->
      (* Keep samples in the histogram's exact range so underflow and
         overflow buckets (tested separately) stay out of the way. *)
      let samples =
        List.map (fun v -> Float.max 1e-9 (Float.min 1000. (Float.abs v))) raw
      in
      let h = H.create () in
      List.iter (H.record h) samples;
      List.for_all
        (fun q ->
          let exact = exact_quantile samples q in
          let approx = H.quantile h q in
          exact <= approx && approx <= exact *. (1. +. H.relative_error))
        [ 0.5; 0.9; 0.99; 0.999 ])

let prop_merge_order_invariant =
  QCheck.Test.make ~name:"merge is order-invariant" ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(int_range 0 100) pos_float)
        (list_of_size Gen.(int_range 0 100) pos_float))
    (fun (xs, ys) ->
      let fill vs =
        let h = H.create () in
        List.iter (H.record h) vs;
        h
      in
      let ab = fill xs and ba = fill ys in
      H.merge_into ~into:ab (fill ys);
      H.merge_into ~into:ba (fill xs);
      H.count ab = H.count ba
      && List.for_all
           (fun q ->
             let a = H.quantile ab q and b = H.quantile ba q in
             a = b || (Float.is_nan a && Float.is_nan b))
           [ 0.25; 0.5; 0.9; 0.99 ])

let test_histogram_edges () =
  let h = H.create () in
  Alcotest.(check bool) "empty quantile NaN" true (Float.is_nan (H.quantile h 0.5));
  Alcotest.(check bool) "empty max NaN" true (Float.is_nan (H.max_value h));
  H.record h Float.nan;
  H.record h 0.;
  H.record h (-3.);
  H.record h 1e-12 (* below 2^-30: underflow *);
  H.record h Float.infinity;
  H.record h 1e9 (* above 2^10: overflow *);
  Alcotest.(check int) "all six counted" 6 (H.count h);
  Alcotest.(check (float 0.)) "overflow reports range top" 1024. (H.max_value h);
  H.clear h;
  Alcotest.(check int) "clear empties" 0 (H.count h)

let test_summary_fields () =
  let h = H.create () in
  List.iter (H.record h) [ 0.001; 0.002; 0.004 ];
  let r = H.summary_fields ~prefix:"x" h in
  Alcotest.(check bool) "count field" true (R.find "x_count" r = Some (R.Int 3));
  Alcotest.(check bool) "p999 present" true (R.find "x_p999" r <> None)

(* --- profiler ------------------------------------------------------ *)

let with_profiler f =
  P.enable ();
  P.reset ();
  Fun.protect ~finally:P.disable f

let find_main path =
  match P.snapshot () with
  | main :: _ -> P.find main path
  | [] -> None

let test_span_nesting () =
  with_profiler @@ fun () ->
  P.span "outer" (fun () ->
      P.span "inner" ignore;
      P.span "inner" ignore);
  let outer = Option.get (find_main [ "outer" ]) in
  let inner = Option.get (find_main [ "outer"; "inner" ]) in
  Alcotest.(check int) "outer entered once" 1 outer.P.count;
  Alcotest.(check int) "inner entered twice" 2 inner.P.count;
  Alcotest.(check bool) "outer contains inner" true
    (P.total outer >= P.total inner);
  Alcotest.(check bool) "self time non-negative" true (P.self_s outer >= 0.)

let test_span_exception_unwind () =
  with_profiler @@ fun () ->
  (try P.span "a" (fun () -> P.span "b" (fun () -> raise Exit))
   with Exit -> ());
  (* The exception unwound through two open spans; both must be closed,
     so a fresh span lands under the root, not under "a" or "b". *)
  P.span "after" ignore;
  Alcotest.(check bool) "a recorded" true (find_main [ "a" ] <> None);
  Alcotest.(check bool) "b nested under a" true (find_main [ "a"; "b" ] <> None);
  Alcotest.(check bool) "stack rewound to root" true
    (find_main [ "after" ] <> None && find_main [ "a"; "after" ] = None)

let test_span_disabled_passthrough () =
  P.disable ();
  Alcotest.(check int) "value threads through" 42 (P.span "ghost" (fun () -> 42));
  with_profiler @@ fun () ->
  Alcotest.(check bool) "ghost span not recorded" true (find_main [ "ghost" ] = None)

let test_merge_deterministic () =
  with_profiler @@ fun () ->
  P.span "zeta" ignore;
  P.span "alpha" (fun () -> P.span "beta" ignore);
  let forest = P.snapshot () in
  let ab = P.merge ~name:"m" forest in
  let ba = P.merge ~name:"m" (List.rev forest) in
  Alcotest.(check string) "merge order irrelevant" (P.to_json [ ab ])
    (P.to_json [ ba ]);
  (* Children come out in sorted name order regardless of span order. *)
  let names =
    List.concat_map
      (fun root ->
        Hashtbl.fold (fun k _ acc -> k :: acc) root.P.children []
        |> List.sort compare)
      [ Option.get (find_main []) ]
  in
  Alcotest.(check (list string)) "sorted children" [ "alpha"; "zeta" ] names

let test_collapsed_format () =
  with_profiler @@ fun () ->
  P.span "work" (fun () -> P.span "step" ignore);
  let lines = String.split_on_char '\n' (P.to_collapsed (P.snapshot ())) in
  List.iter
    (fun line ->
      if line <> "" then
        match String.rindex_opt line ' ' with
        | None -> Alcotest.failf "no weight in %S" line
        | Some i ->
          let weight = String.sub line (i + 1) (String.length line - i - 1) in
          Alcotest.(check bool)
            (Printf.sprintf "integer weight in %S" line)
            true
            (int_of_string_opt weight <> None))
    lines;
  Alcotest.(check bool) "stack path present" true
    (List.exists
       (fun l -> String.length l >= 15 && String.sub l 0 15 = "main;work;step ")
       lines)

(* --- metrics layer ------------------------------------------------- *)

let with_metrics f =
  M.enable ();
  M.reset ();
  Fun.protect ~finally:M.disable f

let test_metrics_disabled_noop () =
  M.disable ();
  M.reset ();
  M.record M.Sim_wall 0.5;
  Alcotest.(check int) "disabled record drops" 0 (H.count (M.merged M.Sim_wall))

let test_metrics_record_and_merge () =
  with_metrics @@ fun () ->
  for _ = 1 to 10 do
    M.record M.Queueing_delay 0.01
  done;
  M.record M.Sojourn 0.002;
  Alcotest.(check int) "ten delays" 10 (H.count (M.merged M.Queueing_delay));
  Alcotest.(check int) "one sojourn" 1 (H.count (M.merged M.Sojourn));
  let names = List.map fst (M.all_merged ()) in
  Alcotest.(check (list string)) "canonical order"
    [ "eval_round_s"; "queueing_delay_s"; "sim_wall_s"; "sojourn_s" ]
    names;
  let r = M.summary_fields () in
  Alcotest.(check bool) "only non-empty kinds summarized" true
    (R.find "h_queueing_delay_s_count" r = Some (R.Int 10)
    && R.find "h_sim_wall_s_count" r = None)

let test_metrics_cross_domain () =
  with_metrics @@ fun () ->
  M.record M.Eval_round 0.25;
  let worker n () =
    for _ = 1 to n do
      M.record M.Eval_round 0.125
    done
  in
  let d1 = Domain.spawn (worker 50) and d2 = Domain.spawn (worker 70) in
  Domain.join d1;
  Domain.join d2;
  let h = M.merged M.Eval_round in
  Alcotest.(check int) "merged across domains" 121 (H.count h);
  (* Merging is bucketwise addition: re-merging must be stable. *)
  Alcotest.(check (float 0.)) "deterministic quantile"
    (H.quantile h 0.5)
    (H.quantile (M.merged M.Eval_round) 0.5)

(* --- counters ------------------------------------------------------ *)

let test_counters_diff () =
  let before = C.snapshot () in
  C.add C.events_run 5;
  C.add C.lookups 3;
  C.incr C.pool_hits;
  let d = C.diff (C.snapshot ()) before in
  Alcotest.(check int) "events_run delta" 5 d.C.events_run;
  Alcotest.(check int) "lookups delta" 3 d.C.lookups;
  Alcotest.(check int) "pool_hits delta" 1 d.C.pool_hits;
  Alcotest.(check int) "untouched counter zero" 0 d.C.index_builds

let test_counters_record_roundtrip () =
  let s =
    {
      C.events_run = 1;
      acks_processed = 2;
      lookups = 3;
      index_builds = 4;
      pool_hits = 5;
      pool_misses = 6;
    }
  in
  match C.of_record (C.to_record s) with
  | None -> Alcotest.fail "of_record lost fields"
  | Some back ->
    Alcotest.(check int) "events_run" s.C.events_run back.C.events_run;
    Alcotest.(check int) "pool_misses" s.C.pool_misses back.C.pool_misses

(* --- manifest ------------------------------------------------------ *)

module Manifest = Remy_obs.Manifest

let sample_manifest () =
  Manifest.make ~tool:"remy_train"
    ~argv:[| "remy_train"; "--epochs"; "2" |]
    ~git:"deadbeef-dirty" ~config_fingerprint:"abc123" ~seed:42 ()

let check_manifest_eq a b =
  Alcotest.(check string) "tool" a.Manifest.tool b.Manifest.tool;
  Alcotest.(check string) "status" a.Manifest.status b.Manifest.status;
  Alcotest.(check string) "argv" a.Manifest.argv b.Manifest.argv;
  Alcotest.(check string) "git" a.Manifest.git b.Manifest.git;
  Alcotest.(check string) "config" a.Manifest.config_fingerprint
    b.Manifest.config_fingerprint;
  Alcotest.(check int) "cores" a.Manifest.host_cores b.Manifest.host_cores;
  Alcotest.(check int) "seed" a.Manifest.seed b.Manifest.seed;
  Alcotest.(check (float 1e-9)) "wall" a.Manifest.wall_s b.Manifest.wall_s;
  Alcotest.(check int) "counters" a.Manifest.counters.C.events_run
    b.Manifest.counters.C.events_run

let test_manifest_record_roundtrip () =
  let m = sample_manifest () in
  (match Manifest.of_record (Manifest.to_record m) with
  | Error e -> Alcotest.failf "running manifest: %s" e
  | Ok back -> check_manifest_eq m back);
  let fin = Manifest.finalize m ~status:"completed" ~wall_s:12.5 in
  match Manifest.of_record (Manifest.to_record fin) with
  | Error e -> Alcotest.failf "finalized manifest: %s" e
  | Ok back ->
    check_manifest_eq fin back;
    Alcotest.(check string) "status finalized" "completed" back.Manifest.status

let test_manifest_file_roundtrip () =
  let path = Filename.temp_file "manifest_test" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let m = Manifest.finalize (sample_manifest ()) ~status:"interrupted" ~wall_s:3. in
      Manifest.write ~path m;
      match Manifest.load ~path with
      | Error e -> Alcotest.failf "load: %s" e
      | Ok back -> check_manifest_eq m back)

let test_manifest_rejects_garbage () =
  Alcotest.(check bool) "missing schema refused" true
    (Result.is_error (Manifest.of_record [ ("tool", R.Str "x") ]))

(* --- dashboard ----------------------------------------------------- *)

module Dashboard = Remy_obs.Dashboard

let sample_epoch =
  {
    Remy_obs.Telemetry.epoch = 3;
    live_rules = 7;
    most_used_rule = Some 0;
    evaluations = 480;
    improvements = 5;
    subdivisions = 2;
    score = -3.5;
    wall_s = 12.;
    domains = 2;
    par_tasks = 100;
    par_spawns = 2;
    par_jobs = 50;
    par_helper_tasks = 40;
    spec_sims = 300;
    spec_skips = 100;
  }

let test_sparkline () =
  Alcotest.(check string) "empty" "" (Dashboard.sparkline []);
  (* Each cell is one 3-byte UTF-8 block element. *)
  Alcotest.(check int) "one cell per value" 9
    (String.length (Dashboard.sparkline [ 1.; 2.; 3. ]));
  let flat = Dashboard.sparkline [ 5.; 5.; 5. ] in
  Alcotest.(check int) "flat series still draws" 9 (String.length flat)

let test_dashboard_render () =
  (* Point repaints at /dev/null; [render] is what we assert on. *)
  let null = open_out "/dev/null" in
  Fun.protect ~finally:(fun () -> close_out null) @@ fun () ->
  let d = Dashboard.create ~out:null ~wall_budget_s:600. () in
  Dashboard.update d sample_epoch;
  let frame = Dashboard.render d in
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "epoch shown" true (contains "epoch" frame);
  Alcotest.(check bool) "cache hit rate" true (contains "25.0%" frame);
  Alcotest.(check bool) "pool utilization" true (contains "40.0%" frame);
  Alcotest.(check bool) "eta present" true (contains "eta" frame);
  Alcotest.(check bool) "no cursor control in render" true
    (not (contains "\027" frame))

(* --- observation changes nothing ----------------------------------- *)

let obs_config () =
  {
    Dumbbell.service = Dumbbell.Rate_mbps 15.;
    qdisc = Dumbbell.Sfq_codel 1000;
    flows =
      Array.init 2 (fun _ ->
          {
            Dumbbell.cc = Newreno.factory ();
            rtt = 0.15;
            workload = Workload.by_bytes ~mean_bytes:5e4 ~mean_off:0.3;
            start = `Off_draw;
          });
    duration = 20.;
    seed = 11;
    min_rto = 0.2;
  }

let test_observation_invariance () =
  M.disable ();
  P.disable ();
  let plain = Dumbbell.run (obs_config ()) in
  M.enable ();
  M.reset ();
  P.enable ();
  P.reset ();
  let observed =
    Fun.protect
      ~finally:(fun () ->
        M.disable ();
        P.disable ())
      (fun () -> P.span "obs" (fun () -> Dumbbell.run (obs_config ())))
  in
  Array.iteri
    (fun i (f : Metrics.flow_summary) ->
      let g = observed.Dumbbell.flows.(i) in
      Alcotest.(check (float 0.))
        (Printf.sprintf "flow %d throughput" i)
        f.Metrics.throughput_mbps g.Metrics.throughput_mbps;
      Alcotest.(check (float 0.))
        (Printf.sprintf "flow %d delay" i)
        f.Metrics.mean_queueing_delay_ms g.Metrics.mean_queueing_delay_ms)
    plain.Dumbbell.flows;
  Alcotest.(check int) "drops identical" plain.Dumbbell.drops
    observed.Dumbbell.drops

(* --- trace summary delay percentiles ------------------------------- *)

let test_trace_summary_delay () =
  let path = Filename.temp_file "obs_delay" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      M.disable ();
      let tracer =
        Remy_obs.Trace.make
          (Remy_obs.Sink.to_file ~columns:Remy_obs.Trace.columns path)
      in
      ignore (Dumbbell.run ~tracer (obs_config ()));
      Remy_obs.Trace.close tracer;
      match Remy_obs.Trace_summary.of_file path with
      | Error e -> Alcotest.failf "summary: %s" e
      | Ok s ->
        let h =
          match Hashtbl.find_opt s.Remy_obs.Trace_summary.delay_by_flow 0 with
          | Some h -> h
          | None -> Alcotest.fail "flow 0 has no delay histogram"
        in
        Alcotest.(check bool) "delays recorded" true (H.count h > 0);
        let p50 = H.quantile h 0.5 and p99 = H.quantile h 0.99 in
        Alcotest.(check bool) "percentiles ordered" true (p50 <= p99);
        Alcotest.(check bool) "plausible delay range" true
          (p50 > 0. && p99 < 10.))

let tests =
  [
    QCheck_alcotest.to_alcotest prop_quantile_error;
    QCheck_alcotest.to_alcotest prop_merge_order_invariant;
    Alcotest.test_case "histogram edge buckets" `Quick test_histogram_edges;
    Alcotest.test_case "histogram summary fields" `Quick test_summary_fields;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span exception unwind" `Quick test_span_exception_unwind;
    Alcotest.test_case "span disabled passthrough" `Quick
      test_span_disabled_passthrough;
    Alcotest.test_case "profiler merge deterministic" `Quick
      test_merge_deterministic;
    Alcotest.test_case "collapsed stack format" `Quick test_collapsed_format;
    Alcotest.test_case "metrics disabled no-op" `Quick test_metrics_disabled_noop;
    Alcotest.test_case "metrics record and merge" `Quick
      test_metrics_record_and_merge;
    Alcotest.test_case "metrics cross-domain merge" `Quick
      test_metrics_cross_domain;
    Alcotest.test_case "counters diff" `Quick test_counters_diff;
    Alcotest.test_case "counters record round-trip" `Quick
      test_counters_record_roundtrip;
    Alcotest.test_case "manifest record round-trip" `Quick
      test_manifest_record_roundtrip;
    Alcotest.test_case "manifest file round-trip" `Quick
      test_manifest_file_roundtrip;
    Alcotest.test_case "manifest rejects garbage" `Quick
      test_manifest_rejects_garbage;
    Alcotest.test_case "sparkline" `Quick test_sparkline;
    Alcotest.test_case "dashboard render" `Quick test_dashboard_render;
    Alcotest.test_case "observation invariance" `Slow test_observation_invariance;
    Alcotest.test_case "trace summary delay percentiles" `Slow
      test_trace_summary_delay;
  ]
