open Remy

(* Crash-safe persistence: snapshot round-trips, the atomic save
   protocol, and — most importantly — that corrupted or stale files are
   rejected with a named diagnostic instead of being trained on. *)

let tmp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "remy-ckpt-test-%d-%d" (Unix.getpid ()) !n)
    in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir

let mem a s r = Memory.make ~ack_ewma:a ~send_ewma:s ~rtt_ratio:r

(* A tree with history: subdivision (so the rules array has retired
   entries), distinct actions and epochs — everything [to_sexp] loses
   and [to_sexp_full] must keep. *)
let interesting_tree () =
  let tree = Rule_tree.create () in
  let kids = Rule_tree.subdivide tree 0 ~at:(mem 100. 200. 4.) in
  List.iteri
    (fun i id ->
      Rule_tree.set_action tree id
        {
          Action.multiple = 0.5 +. (0.1 *. float_of_int i);
          increment = float_of_int (i - 3);
          intersend_ms = 0.05 *. float_of_int (i + 1);
        };
      Rule_tree.set_epoch tree id (i mod 3))
    kids;
  (match kids with
  | k :: _ -> ignore (Rule_tree.subdivide tree k ~at:(mem 50. 60. 2.))
  | [] -> ());
  tree

let snapshot ?(tree = interesting_tree ()) ?(seed = 42) () =
  {
    Checkpoint.config_hash = Checkpoint.hash_hex "test-config";
    position = Checkpoint.Mid_epoch { first_rule = Some 3 };
    epoch = 2;
    rounds = 7;
    improvements = 11;
    subdivisions = 2;
    evaluations = 77;
    spec_sims = 1200;
    spec_skips = 300;
    last_score = -2.52342304;
    elapsed_s = 123.25;
    telemetry_epochs = 2;
    rng = Remy_util.Prng.state (Remy_util.Prng.create seed);
    tree;
  }

let check_same_snapshot label (a : Checkpoint.snapshot) (b : Checkpoint.snapshot) =
  Alcotest.(check string) (label ^ ": config hash") a.config_hash b.config_hash;
  Alcotest.(check bool) (label ^ ": position") true (a.position = b.position);
  Alcotest.(check int) (label ^ ": epoch") a.epoch b.epoch;
  Alcotest.(check int) (label ^ ": rounds") a.rounds b.rounds;
  Alcotest.(check int) (label ^ ": improvements") a.improvements b.improvements;
  Alcotest.(check int) (label ^ ": subdivisions") a.subdivisions b.subdivisions;
  Alcotest.(check int) (label ^ ": evaluations") a.evaluations b.evaluations;
  Alcotest.(check int) (label ^ ": spec_sims") a.spec_sims b.spec_sims;
  Alcotest.(check int) (label ^ ": spec_skips") a.spec_skips b.spec_skips;
  Alcotest.(check (float 0.)) (label ^ ": last_score") a.last_score b.last_score;
  Alcotest.(check (float 0.)) (label ^ ": elapsed_s") a.elapsed_s b.elapsed_s;
  Alcotest.(check bool) (label ^ ": rng words") true (a.rng = b.rng);
  Alcotest.(check string)
    (label ^ ": full tree state")
    (Remy_util.Sexp.to_string (Rule_tree.to_sexp_full a.tree))
    (Remy_util.Sexp.to_string (Rule_tree.to_sexp_full b.tree))

let test_sexp_roundtrip () =
  let s = snapshot () in
  match Checkpoint.of_sexp (Checkpoint.to_sexp s) with
  | Ok back -> check_same_snapshot "sexp" s back
  | Error e -> Alcotest.failf "of_sexp rejected to_sexp output: %s" e

let test_save_load_roundtrip () =
  let dir = tmp_dir () in
  let s = snapshot () in
  Checkpoint.save ~dir s;
  (match Checkpoint.load ~dir with
  | Ok back -> check_same_snapshot "disk" s back
  | Error e -> Alcotest.failf "load rejected save output: %s" e);
  Alcotest.(check bool)
    "no temp file left behind" false
    (Sys.file_exists (Checkpoint.file ~dir ^ ".tmp"))

let test_save_overwrites_atomically () =
  let dir = tmp_dir () in
  Checkpoint.save ~dir (snapshot ~seed:1 ());
  let s2 = { (snapshot ~seed:2 ()) with Checkpoint.rounds = 99 } in
  Checkpoint.save ~dir s2;
  match Checkpoint.load ~dir with
  | Ok back -> Alcotest.(check int) "latest snapshot wins" 99 back.Checkpoint.rounds
  | Error e -> Alcotest.failf "load after overwrite failed: %s" e

(* Randomized round-trip: arbitrary counters, PRNG seeds and tree
   shapes must all survive serialize -> print -> parse -> validate. *)
let prop_roundtrip =
  QCheck.Test.make ~name:"checkpoint round-trips through its file format"
    ~count:100
    QCheck.(
      quad small_nat small_nat (int_range 0 1000) (int_range 1 10000))
    (fun (epoch, rounds, evals, seed) ->
      let tree = Rule_tree.create () in
      let rng = Remy_util.Prng.create seed in
      (* Randomly grown tree, points drawn inside the root box. *)
      let splits = seed mod 3 in
      for _ = 1 to splits do
        let ids = Rule_tree.live_ids tree in
        let id = List.nth ids (Remy_util.Prng.int rng (List.length ids)) in
        let box = Rule_tree.box tree id in
        let pick d =
          let lo, hi = box.(d) in
          Remy_util.Prng.uniform rng lo hi
        in
        ignore (Rule_tree.subdivide tree id ~at:(mem (pick 0) (pick 1) (pick 2)))
      done;
      let s =
        {
          Checkpoint.config_hash = Checkpoint.hash_hex (string_of_int seed);
          position =
            (if rounds mod 2 = 0 then Checkpoint.Epoch_start
             else
               Checkpoint.Mid_epoch
                 { first_rule = (if rounds mod 4 = 1 then None else Some 0) });
          epoch;
          rounds;
          improvements = evals / 2;
          subdivisions = splits;
          evaluations = evals;
          spec_sims = evals * 3;
          spec_skips = evals;
          last_score = -1. *. float_of_int seed /. 7.;
          elapsed_s = float_of_int rounds *. 0.25;
          telemetry_epochs = epoch;
          rng = Remy_util.Prng.state rng;
          tree;
        }
      in
      (* Through the actual printed representation, as save/load do. *)
      let text = Remy_util.Sexp.to_string_hum (Checkpoint.to_sexp s) in
      match Remy_util.Sexp.of_string text with
      | Error _ -> false
      | Ok sx -> (
        match Checkpoint.of_sexp sx with
        | Error _ -> false
        | Ok back ->
          back.Checkpoint.evaluations = s.Checkpoint.evaluations
          && back.Checkpoint.rounds = s.Checkpoint.rounds
          && back.Checkpoint.position = s.Checkpoint.position
          && back.Checkpoint.rng = s.Checkpoint.rng
          && Remy_util.Sexp.to_string (Rule_tree.to_sexp_full back.Checkpoint.tree)
             = Remy_util.Sexp.to_string (Rule_tree.to_sexp_full s.Checkpoint.tree)))

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

let saved_text () =
  let dir = tmp_dir () in
  Checkpoint.save ~dir (snapshot ());
  let path = Checkpoint.file ~dir in
  (dir, In_channel.with_open_text path In_channel.input_all)

let expect_rejection label dir ~needle =
  match Checkpoint.load ~dir with
  | Ok _ -> Alcotest.failf "%s: corrupted checkpoint was accepted" label
  | Error e ->
    let lower = String.lowercase_ascii e in
    let found =
      let n = String.length needle and l = String.length lower in
      let rec scan i = i + n <= l && (String.sub lower i n = needle || scan (i + 1)) in
      scan 0
    in
    if not found then
      Alcotest.failf "%s: diagnostic %S does not mention %S" label e needle

let test_rejects_bit_flip () =
  let dir, text = saved_text () in
  (* Flip one digit of a counter: still parses, but the checksum must
     catch it. *)
  let needle = "(evaluations 77)" in
  (match String.index_opt text '(' with None -> Alcotest.fail "no sexp" | Some _ -> ());
  let idx =
    let rec find i =
      if i + String.length needle > String.length text then
        Alcotest.failf "payload %S not found" needle
      else if String.sub text i (String.length needle) = needle then i
      else find (i + 1)
    in
    find 0
  in
  let flipped =
    String.mapi
      (fun i c -> if i = idx + String.length needle - 2 then '8' else c)
      text
  in
  write_file (Checkpoint.file ~dir) flipped;
  expect_rejection "bit flip" dir ~needle:"checksum mismatch"

let test_rejects_truncation () =
  let dir, text = saved_text () in
  write_file (Checkpoint.file ~dir) (String.sub text 0 (String.length text / 2));
  expect_rejection "truncation" dir ~needle:"truncated"

let test_rejects_wrong_version () =
  let dir, _ = saved_text () in
  (* Rebuild the container with a bumped version tag; the version check
     must fire before the checksum is even consulted. *)
  let s = Checkpoint.to_sexp (snapshot ()) in
  let bumped =
    match s with
    | Remy_util.Sexp.List (tag :: _v :: rest) ->
      Remy_util.Sexp.List (tag :: Remy_util.Sexp.Atom "v99" :: rest)
    | _ -> Alcotest.fail "unexpected checkpoint shape"
  in
  write_file (Checkpoint.file ~dir) (Remy_util.Sexp.to_string_hum bumped);
  expect_rejection "version" dir ~needle:"unsupported checkpoint version"

let test_rejects_not_a_checkpoint () =
  let dir = tmp_dir () in
  write_file (Checkpoint.file ~dir) "(hello world)";
  expect_rejection "shape" dir ~needle:"not a checkpoint"

let test_rejects_missing_file () =
  let dir = tmp_dir () in
  match Checkpoint.load ~dir with
  | Ok _ -> Alcotest.fail "loaded a checkpoint from an empty directory"
  | Error e ->
    Alcotest.(check bool) "names the path" true
      (String.length e > 0 && e.[0] = '/')

let test_rejects_zero_prng () =
  let s = { (snapshot ()) with Checkpoint.rng = [| 0L; 0L; 0L; 0L |] } in
  match Checkpoint.of_sexp (Checkpoint.to_sexp s) with
  | Ok _ -> Alcotest.fail "all-zero PRNG state accepted"
  | Error e ->
    Alcotest.(check bool) "names the PRNG" true
      (String.length e >= 4 && String.sub e 0 4 = "bad ")

let test_rejects_nonfinite_action () =
  let tree = interesting_tree () in
  Rule_tree.set_action tree 3
    { Action.multiple = Float.nan; increment = 1.; intersend_ms = 0.05 };
  let s = { (snapshot ()) with Checkpoint.tree } in
  match Checkpoint.of_sexp (Checkpoint.to_sexp s) with
  | Ok _ -> Alcotest.fail "NaN action accepted"
  | Error e ->
    (* The diagnostic must name the offending rule. *)
    let mentions_rule =
      let n = String.length e in
      let rec scan i = i + 6 <= n && (String.sub e i 6 = "rule 3" || scan (i + 1)) in
      scan 0
    in
    Alcotest.(check bool) "names rule 3" true mentions_rule

let test_check_config () =
  let s = snapshot () in
  (match Checkpoint.check_config s ~config_hash:s.Checkpoint.config_hash with
  | Ok () -> ()
  | Error e -> Alcotest.failf "matching hash rejected: %s" e);
  match Checkpoint.check_config s ~config_hash:(Checkpoint.hash_hex "other") with
  | Ok () -> Alcotest.fail "mismatched config hash accepted"
  | Error e ->
    let mentions =
      let n = String.length e in
      let rec scan i =
        i + 8 <= n && (String.sub e i 8 = "mismatch" || scan (i + 1))
      in
      scan 0
    in
    Alcotest.(check bool) "says mismatch" true mentions

let test_hash_hex_stable () =
  (* FNV-1a-64 known vectors: the format on disk depends on these. *)
  Alcotest.(check string) "empty" "cbf29ce484222325" (Checkpoint.hash_hex "");
  Alcotest.(check string) "a" "af63dc4c8601ec8c" (Checkpoint.hash_hex "a");
  Alcotest.(check bool) "distinct inputs, distinct hashes" true
    (Checkpoint.hash_hex "foo" <> Checkpoint.hash_hex "bar")

let tests =
  [
    Alcotest.test_case "snapshot sexp round-trip" `Quick test_sexp_roundtrip;
    Alcotest.test_case "save/load round-trip, no temp residue" `Quick
      test_save_load_roundtrip;
    Alcotest.test_case "save overwrites atomically" `Quick
      test_save_overwrites_atomically;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    Alcotest.test_case "rejects bit flip (checksum)" `Quick test_rejects_bit_flip;
    Alcotest.test_case "rejects truncation" `Quick test_rejects_truncation;
    Alcotest.test_case "rejects wrong version" `Quick test_rejects_wrong_version;
    Alcotest.test_case "rejects non-checkpoint file" `Quick
      test_rejects_not_a_checkpoint;
    Alcotest.test_case "rejects missing file" `Quick test_rejects_missing_file;
    Alcotest.test_case "rejects all-zero PRNG state" `Quick test_rejects_zero_prng;
    Alcotest.test_case "rejects non-finite action in tree" `Quick
      test_rejects_nonfinite_action;
    Alcotest.test_case "config hash guard" `Quick test_check_config;
    Alcotest.test_case "hash_hex matches FNV-1a vectors" `Quick test_hash_hex_stable;
  ]
