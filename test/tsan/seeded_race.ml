(* A deliberate data race: two domains increment one plain ref.  The
   ThreadSanitizer CI job runs this first and *requires* a TSan report
   (non-zero exit under TSAN_OPTIONS=exitcode) — a sanity check that the
   sanitizer is armed — before it runs the real concurrency suites and
   requires them clean.

   The lint's domain-safety pass would flag this file too (the closure
   captures [hits] across Domain.spawn); it lives under test/, outside
   the linted lib/ and bin/ roots, precisely because it is a seeded
   violation. *)

let () =
  let hits = ref 0 in
  let d =
    Domain.spawn (fun () ->
        for _ = 1 to 1_000_000 do
          incr hits
        done)
  in
  for _ = 1 to 1_000_000 do
    incr hits
  done;
  Domain.join d;
  Printf.printf "hits=%d (racy: expect < 2000000 sometimes)\n" !hits
