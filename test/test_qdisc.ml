open Remy_sim

let mk_pkt ?(flow = 0) ?(ecn = false) seq =
  Packet.make ~flow ~seq ~conn:0 ~now:0. ~ecn_capable:ecn ()

let test_droptail_fifo () =
  let q = Droptail.create ~capacity:10 () in
  for i = 0 to 4 do
    Alcotest.(check bool) "accepted" true (q.Qdisc.enqueue ~now:0. (mk_pkt i))
  done;
  Alcotest.(check int) "length" 5 (q.Qdisc.length ());
  for i = 0 to 4 do
    match q.Qdisc.dequeue ~now:0. with
    | Some p -> Alcotest.(check int) "FIFO order" i p.Packet.seq
    | None -> Alcotest.fail "unexpected empty"
  done;
  Alcotest.(check bool) "drained" true (q.Qdisc.dequeue ~now:0. = None)

let test_droptail_capacity () =
  let q = Droptail.create ~capacity:3 () in
  for i = 0 to 2 do
    ignore (q.Qdisc.enqueue ~now:0. (mk_pkt i))
  done;
  Alcotest.(check bool) "tail drop" false (q.Qdisc.enqueue ~now:0. (mk_pkt 3));
  Alcotest.(check int) "drop counted" 1 (q.Qdisc.drops ());
  Alcotest.(check int) "queue unchanged" 3 (q.Qdisc.length ())

let test_droptail_bytes () =
  let q = Droptail.create ~capacity:10 () in
  ignore (q.Qdisc.enqueue ~now:0. (mk_pkt 0));
  ignore (q.Qdisc.enqueue ~now:0. (mk_pkt 1));
  Alcotest.(check int) "bytes" (2 * Packet.default_size) (q.Qdisc.byte_length ());
  ignore (q.Qdisc.dequeue ~now:0.);
  Alcotest.(check int) "bytes after dequeue" Packet.default_size (q.Qdisc.byte_length ())

let test_unlimited () =
  let q = Droptail.create ~capacity:Qdisc.unlimited_capacity () in
  for i = 0 to 99_999 do
    if not (q.Qdisc.enqueue ~now:0. (mk_pkt i)) then Alcotest.fail "dropped"
  done;
  Alcotest.(check int) "no drops" 0 (q.Qdisc.drops ())

let test_dctcp_red_marks_above_threshold () =
  let q = Red.create_dctcp ~capacity:100 ~threshold:5 () in
  (* Fill to the threshold: no marks. *)
  for i = 0 to 4 do
    ignore (q.Qdisc.enqueue ~now:0. (mk_pkt ~ecn:true i))
  done;
  let marked_early =
    List.init 5 (fun _ -> Option.get (q.Qdisc.dequeue ~now:0.))
    |> List.filter (fun p -> p.Packet.ecn_marked)
  in
  Alcotest.(check int) "no marks below K" 0 (List.length marked_early);
  (* Fill past the threshold: arrivals above K are marked. *)
  for i = 0 to 9 do
    ignore (q.Qdisc.enqueue ~now:0. (mk_pkt ~ecn:true i))
  done;
  let marked =
    List.init 10 (fun _ -> Option.get (q.Qdisc.dequeue ~now:0.))
    |> List.filter (fun p -> p.Packet.ecn_marked)
  in
  Alcotest.(check int) "arrivals above K marked" 5 (List.length marked)

let test_dctcp_red_tail_drop () =
  let q = Red.create_dctcp ~capacity:4 ~threshold:2 () in
  for i = 0 to 3 do
    ignore (q.Qdisc.enqueue ~now:0. (mk_pkt ~ecn:true i))
  done;
  Alcotest.(check bool) "full queue drops" false
    (q.Qdisc.enqueue ~now:0. (mk_pkt ~ecn:true 4))

let test_red_marks_under_load () =
  let q =
    Red.create ~capacity:1000 ~min_th:5. ~max_th:15. ~max_p:1.0 ~weight:0.5 ~seed:1 ()
  in
  let marked = ref 0 and dropped = ref 0 in
  for i = 0 to 199 do
    let p = mk_pkt ~ecn:true i in
    if q.Qdisc.enqueue ~now:0. p then begin
      if p.Packet.ecn_marked then incr marked
    end
    else incr dropped;
    (* Keep the queue long so the average crosses max_th. *)
    if q.Qdisc.length () > 30 then ignore (q.Qdisc.dequeue ~now:0.)
  done;
  Alcotest.(check bool) "RED marked ECN-capable packets" true (!marked > 0);
  Alcotest.(check int) "ECN-capable packets not early-dropped" 0 !dropped

let test_red_drops_non_ecn () =
  let q =
    Red.create ~capacity:1000 ~min_th:2. ~max_th:6. ~max_p:1.0 ~weight:1.0 ~seed:1 ()
  in
  let dropped = ref 0 in
  for i = 0 to 99 do
    if not (q.Qdisc.enqueue ~now:0. (mk_pkt i)) then incr dropped
  done;
  Alcotest.(check bool) "non-ECN flows see early drops" true (!dropped > 0)

let tests =
  [
    Alcotest.test_case "droptail FIFO" `Quick test_droptail_fifo;
    Alcotest.test_case "droptail capacity" `Quick test_droptail_capacity;
    Alcotest.test_case "droptail byte accounting" `Quick test_droptail_bytes;
    Alcotest.test_case "unlimited capacity" `Quick test_unlimited;
    Alcotest.test_case "DCTCP RED marks above K" `Quick test_dctcp_red_marks_above_threshold;
    Alcotest.test_case "DCTCP RED tail-drops at capacity" `Quick test_dctcp_red_tail_drop;
    Alcotest.test_case "classic RED marks under load" `Quick test_red_marks_under_load;
    Alcotest.test_case "classic RED drops non-ECN" `Quick test_red_drops_non_ecn;
  ]
