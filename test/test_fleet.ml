(* The SoA fleet acceptance tests: Fleet.factory must be a drop-in,
   bit-identical replacement for the per-record backend
   (Tcp_sender + Remycc closures) that Topology.run uses by default.
   Equivalence is checked flow for flow on multi-bottleneck scenarios
   that exercise every code path the fleet mirrors — pacing, windowing,
   NewReno-style recovery, RFC 6298 timeouts under stochastic loss,
   on/off restarts — plus the override and tally side channels the
   optimizer depends on. *)

open Remy
open Remy_cc
open Remy_sim

(* A subdivided tree with sharply different actions per region, so a
   divergence in memory-signal arithmetic would select different rules
   and blow the comparison up rather than hide in float noise. *)
let make_tree () =
  let tree = Rule_tree.create () in
  ignore
    (Rule_tree.subdivide tree 0
       ~at:(Memory.make ~ack_ewma:200. ~send_ewma:200. ~rtt_ratio:1.5));
  List.iter
    (fun id ->
      let b = Rule_tree.box tree id in
      if fst b.(2) >= 1.5 then
        Rule_tree.set_action tree id
          { Action.multiple = 0.5; increment = 0.; intersend_ms = 3. }
      else
        Rule_tree.set_action tree id
          { Action.multiple = 1.; increment = 2.; intersend_ms = 0.5 })
    (Rule_tree.live_ids tree);
  tree

let check_flow name i (a : Metrics.flow_summary) (b : Metrics.flow_summary) =
  let lbl s = Printf.sprintf "%s: flow %d %s" name i s in
  Alcotest.(check (float 0.)) (lbl "throughput") a.Metrics.throughput_mbps
    b.Metrics.throughput_mbps;
  Alcotest.(check (float 0.))
    (lbl "queueing delay")
    a.Metrics.mean_queueing_delay_ms b.Metrics.mean_queueing_delay_ms;
  Alcotest.(check int) (lbl "bytes") a.Metrics.bytes b.Metrics.bytes;
  Alcotest.(check int) (lbl "packets") a.Metrics.packets b.Metrics.packets;
  Alcotest.(check (float 0.)) (lbl "on_time") a.Metrics.on_time b.Metrics.on_time

(* Run [config] under both backends and demand identical results.  The
   records arm relies on the flows' [cc] factories (Remycc closures);
   the fleet arm substitutes the shared-array backend for the same
   tree.  A fleet factory is single-use, so build it here. *)
let check_equiv ?override ?tally_pair name tree (config : Topology.config) =
  let records =
    match tally_pair with
    | None -> Topology.run config
    | Some (t, _) ->
      Topology.run
        {
          config with
          Topology.flows =
            Array.map
              (fun (f : Topology.flow_spec) ->
                { f with Topology.cc = Remycc.factory ?override ~tally:t tree })
              config.Topology.flows;
        }
  in
  let fleet =
    let tally = Option.map snd tally_pair in
    Topology.run
      ~sender_factory:(Fleet.factory ?override ?tally tree)
      config
  in
  Alcotest.(check bool) (name ^ ": traffic flowed") true
    (records.Topology.received > 0);
  Array.iteri
    (fun i f -> check_flow name i f fleet.Topology.flows.(i))
    records.Topology.flows;
  Alcotest.(check int) (name ^ ": drops") records.Topology.drops
    fleet.Topology.drops;
  Alcotest.(check int) (name ^ ": delivered") records.Topology.delivered
    fleet.Topology.delivered;
  Alcotest.(check int) (name ^ ": received") records.Topology.received
    fleet.Topology.received;
  Alcotest.(check (float 0.))
    (name ^ ": utilization")
    records.Topology.bottleneck_utilization fleet.Topology.bottleneck_utilization

let test_fleet_matches_records_parking_lot () =
  let tree = make_tree () in
  let cfg ?override () =
    Topology.parking_lot ~hops:3 ~n:6
      ~cc:(Remycc.factory ?override tree)
      ~workload:(Workload.by_bytes ~mean_bytes:5e4 ~mean_off:0.3)
      ~start:`Off_draw ~duration:10. ~seed:23 ()
  in
  check_equiv "parking-lot" tree (cfg ());
  (* The optimizer's candidate-evaluation side channel: substituting one
     rule's action must take the same effect in both backends. *)
  let override =
    (0, { Action.multiple = 0.; increment = 1.; intersend_ms = 40. })
  in
  check_equiv ~override "parking-lot override" tree (cfg ~override ())

let test_fleet_matches_records_incast () =
  let tree = make_tree () in
  check_equiv "incast" tree
    (Topology.incast ~n:32 ~cc:(Remycc.factory tree) ~duration:1.5 ~seed:5 ())

let test_fleet_matches_records_lossy () =
  (* Stochastic loss drives dup-ack recovery, partial acks, and RTO
     go-back-N — the fleet's hairiest mirrored paths. *)
  let tree = make_tree () in
  let rtt = 0.08 in
  let cfg =
    {
      Topology.links =
        [|
          {
            Topology.rate_mbps = 8.;
            delay_s = rtt /. 2.;
            qdisc = Dumbbell.With_loss (0.05, Dumbbell.Droptail 200);
          };
        |];
      flows =
        Array.init 4 (fun _ ->
            {
              Topology.cc = Remycc.factory tree;
              route = [| 0 |];
              workload = Workload.by_bytes ~mean_bytes:8e4 ~mean_off:0.2;
              start = `Off_draw;
            });
      duration = 15.;
      seed = 31;
      min_rto = 0.2;
    }
  in
  check_equiv "lossy" tree cfg

let test_fleet_matches_records_tally () =
  (* Rule-usage tallies (counts and reservoir samples both draw from a
     seeded RNG) must come out identical. *)
  let tree = make_tree () in
  let tally_of () = Tally.create ~capacity:(Rule_tree.capacity tree) ~seed:3 () in
  let t_rec = tally_of () and t_fleet = tally_of () in
  let cfg =
    Topology.parking_lot ~hops:2 ~n:4 ~cc:(Remycc.factory tree)
      ~workload:Workload.saturating ~start:`Immediate ~duration:4. ~seed:8 ()
  in
  check_equiv ~tally_pair:(t_rec, t_fleet) "tally" tree cfg;
  List.iter
    (fun id ->
      Alcotest.(check int)
        (Printf.sprintf "rule %d usage" id)
        (Tally.count t_rec id) (Tally.count t_fleet id);
      Alcotest.(check bool) (Printf.sprintf "rule %d samples" id) true
        (Tally.samples t_rec id = Tally.samples t_fleet id))
    (Rule_tree.live_ids tree);
  Alcotest.(check bool) "rules were exercised" true
    (List.exists (fun id -> Tally.count t_rec id > 0) (Rule_tree.live_ids tree))

let test_fleet_scales_to_4096 () =
  (* The allocation story at the target scale: a 4096-flow incast burst
     runs to completion and stays deterministic. *)
  let tree = make_tree () in
  let run () =
    Topology.run
      ~sender_factory:(Fleet.factory tree)
      (Topology.incast ~n:4096 ~cc:(Remycc.factory tree) ~duration:0.25 ~seed:2 ())
  in
  let r1 = run () and r2 = run () in
  Alcotest.(check bool) "bursts delivered" true (r1.Topology.received > 0);
  Array.iteri
    (fun i f -> check_flow "fleet-4096" i f r2.Topology.flows.(i))
    r1.Topology.flows

let test_fleet_factory_is_single_use () =
  (* One fleet per run: reusing a factory across runs with different
     flow counts must be rejected rather than silently sharing arrays. *)
  let tree = make_tree () in
  let factory = Fleet.factory tree in
  let cfg n =
    Topology.incast ~n ~cc:(Remycc.factory tree) ~duration:0.05 ~seed:1 ()
  in
  ignore (Topology.run ~sender_factory:factory (cfg 2));
  match Topology.run ~sender_factory:factory (cfg 3) with
  | _ -> Alcotest.fail "reuse with a different flow count was accepted"
  | exception Invalid_argument _ -> ()

let tests =
  [
    Alcotest.test_case "fleet matches records (parking lot + override)" `Slow
      test_fleet_matches_records_parking_lot;
    Alcotest.test_case "fleet matches records (incast)" `Slow
      test_fleet_matches_records_incast;
    Alcotest.test_case "fleet matches records (stochastic loss)" `Slow
      test_fleet_matches_records_lossy;
    Alcotest.test_case "fleet matches records (tally)" `Slow
      test_fleet_matches_records_tally;
    Alcotest.test_case "fleet runs 4096 flows deterministically" `Slow
      test_fleet_scales_to_4096;
    Alcotest.test_case "fleet factory is single-use" `Quick
      test_fleet_factory_is_single_use;
  ]
