open Remy
module Frame = Remy_dist.Frame
module Wire = Remy_dist.Wire
module Worker = Remy_dist.Worker
module Coordinator = Remy_dist.Coordinator
module Sexp = Remy_util.Sexp

(* The distributed-training transport and its headline invariant: any
   message survives the wire bit-exactly, anything torn or hostile is
   rejected with a named position, and a coordinator driving worker
   processes — even through a mid-batch SIGKILL — produces results
   bit-identical to the in-process evaluator. *)

(* Coordinator tests spawn real worker processes by re-execing this test
   binary with a sentinel argument (see [worker_child] and the dispatch
   in test_main).  [Coordinator.Fork] would be simpler, but earlier
   suites spawn domains directly, and OCaml 5's [Unix.fork] is gated on
   a sticky is-multicore flag — once any domain has ever existed, fork
   is refused for the life of the process.  [Spawn] goes through
   posix_spawn, which has no such gate, and exercises the same
   handshake, dispatch, chaos-kill and reissue paths. *)
let worker_child_arg = "--remy-dist-worker-child"
let spawn_spec = Coordinator.Spawn [ Sys.executable_name; worker_child_arg ]

(* Entry point for the re-exec'd child: serve one coordinator connection
   on stdin (the socketpair end [Coordinator.Spawn] installs there). *)
let worker_child () =
  match Remy_dist.Worker.serve Unix.stdin with
  | () -> exit 0
  | exception Remy_dist.Worker.Protocol_error m ->
    prerr_endline m;
    exit 1

(* --- frame layer ------------------------------------------------------ *)

let gen_sexp =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then
          map Sexp.atom (string_size ~gen:(char_range 'a' 'z') (int_range 1 8))
        else
          frequency
            [
              (2, map Sexp.atom (string_size ~gen:(char_range 'a' 'z') (int_range 1 8)));
              (1, map Sexp.list (list_size (int_range 0 4) (self (n / 2))));
            ]))

let prop_frame_roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip" ~count:300
    (QCheck.make gen_sexp) (fun s ->
      match Frame.decode (Frame.encode s) ~pos:0 with
      | Ok (s', consumed) ->
        s' = s && consumed = String.length (Frame.encode s)
      | Error _ -> false)

let prop_frame_roundtrip_fd =
  (* Same property through an actual socket, exercising write/read. *)
  QCheck.Test.make ~name:"write/read roundtrip over socketpair" ~count:50
    (QCheck.make gen_sexp) (fun s ->
      let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () -> Unix.close a; Unix.close b)
        (fun () ->
          Frame.write a s;
          Frame.read b = Ok s))

let expect_corrupt label input ~mentions =
  match Frame.decode input ~pos:0 with
  | Ok _ -> Alcotest.failf "%s: decoded garbage" label
  | Error diag ->
    List.iter
      (fun needle ->
        let present =
          let n = String.length diag and m = String.length needle in
          let rec go i = i + m <= n && (String.sub diag i m = needle || go (i + 1)) in
          go 0
        in
        if not present then
          Alcotest.failf "%s: diagnostic %S does not mention %S" label diag
            needle)
      mentions

let test_frame_rejections () =
  expect_corrupt "truncated header" "RMY" ~mentions:[ "truncated header"; "3 of 8" ];
  expect_corrupt "bad magic" "GARBAGE!" ~mentions:[ "byte 0"; "RMYD"; "GARB" ];
  (* A length word claiming more than max_payload is corruption. *)
  expect_corrupt "oversized length"
    ("RMYD" ^ "\x7f\xff\xff\xff")
    ~mentions:[ "byte 4"; "exceeds" ];
  let whole = Frame.encode (Sexp.atom "hello") in
  expect_corrupt "truncated payload"
    (String.sub whole 0 (String.length whole - 2))
    ~mentions:[ "truncated payload"; "3 of 5" ];
  (* Valid framing around an unparseable payload: the parser's position
     is relayed with the payload's byte offset. *)
  let broken = "RMYD" ^ "\x00\x00\x00\x02" ^ "((" in
  expect_corrupt "garbage payload" broken ~mentions:[ "payload at byte 8" ]

let test_frame_read_eof () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.close a;
  let r = Frame.read b in
  Unix.close b;
  Alcotest.(check bool) "clean close reads as Eof" true (r = Error Frame.Eof)

let test_frame_read_torn () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let whole = Frame.encode (Sexp.atom "hello") in
  let half = String.length whole - 2 in
  ignore (Unix.write_substring a whole 0 half);
  Unix.close a;
  let r = Frame.read b in
  Unix.close b;
  match r with
  | Error (Frame.Corrupt diag) ->
    Alcotest.(check bool)
      (Printf.sprintf "torn payload named: %s" diag)
      true
      (String.length diag >= 17 && String.sub diag 0 17 = "truncated payload")
  | _ -> Alcotest.fail "torn frame not reported as Corrupt"

(* --- wire codec ------------------------------------------------------- *)

let mem a s r = Memory.make ~ack_ewma:a ~send_ewma:s ~rtt_ratio:r

(* A tree with retired rules, distinct actions and epochs — everything
   the checkpoint-grade serialization must carry to keep worker-side
   evaluation identical. *)
let interesting_tree () =
  let tree = Rule_tree.create () in
  let kids = Rule_tree.subdivide tree 0 ~at:(mem 100. 200. 4.) in
  List.iteri
    (fun i id ->
      Rule_tree.set_action tree id
        {
          Action.multiple = 0.5 +. (0.1 *. float_of_int i);
          increment = float_of_int (i - 3);
          intersend_ms = 0.05 *. float_of_int (i + 1);
        };
      Rule_tree.set_epoch tree id (i mod 3))
    kids;
  (match kids with
  | k :: _ -> ignore (Rule_tree.subdivide tree k ~at:(mem 50. 60. 2.))
  | [] -> ());
  tree

let specimen ?(seed = 421) ?(n = 3) () =
  {
    Net_model.n;
    spec_link_mbps = 14.27;
    rtt_s = 0.1519;
    workload =
      {
        Remy_sim.Workload.off_time = Remy_util.Dist.Exponential 0.5;
        on_spec = Remy_sim.Workload.By_time (Remy_util.Dist.Constant 1.0);
      };
    spec_seed = seed;
  }

let params =
  {
    Wire.objective = Objective.proportional ~delta:1.0;
    queue_capacity = 1000;
    duration = 1.5;
    topology = None;
  }

(* Rendered-string equality: the canonical encoding is what crosses the
   wire and what Checkpoint hashes, so it is exactly the equality the
   system cares about (and it sidesteps float/NaN structural compare). *)
let check_msg_roundtrip label msg =
  match Wire.of_sexp (Wire.to_sexp msg) with
  | Error e -> Alcotest.failf "%s: decode failed: %s" label e
  | Ok msg' ->
    Alcotest.(check string) label
      (Sexp.to_string (Wire.to_sexp msg))
      (Sexp.to_string (Wire.to_sexp msg'))

let test_msg_roundtrips () =
  check_msg_roundtrip "hello"
    (Wire.Hello { version = Wire.version; config_hash = "0123abcd"; params });
  check_msg_roundtrip "hello with topology"
    (Wire.Hello
       {
         version = Wire.version;
         config_hash = "ffff";
         params = { params with Wire.topology = Some "parking-lot" };
       });
  check_msg_roundtrip "welcome" (Wire.Welcome { config_hash = "0123abcd"; pid = 4242 });
  check_msg_roundtrip "reject"
    (Wire.Reject { reason = "config fingerprint mismatch: a, b" });
  check_msg_roundtrip "tree" (Wire.Tree { gen = 7; tree = interesting_tree () });
  check_msg_roundtrip "baseline task"
    (Wire.Task { index = 3; task = Wire.Baseline { spec = specimen () } });
  check_msg_roundtrip "candidate task"
    (Wire.Task
       {
         index = 12;
         task =
           Wire.Candidate
             {
               rule = 5;
               action = { Action.multiple = 1.7; increment = -2.; intersend_ms = 0.33 };
               spec = specimen ~seed:9 ~n:1 ();
             };
       });
  check_msg_roundtrip "baseline result"
    (Wire.Result
       {
         index = 3;
         outcome =
           Wire.Baseline_result
             {
               scores = [ -1.25; 0.1; Float.pi ];
               slots = [ (0, 17, [ mem 1. 2. 3. ]); (4, 2, []) ];
             };
       });
  check_msg_roundtrip "candidate result"
    (Wire.Result
       { index = 9; outcome = Wire.Candidate_result { scores = [ 0.1 +. 0.2 ] } });
  check_msg_roundtrip "ping" (Wire.Ping { seq = 81 });
  check_msg_roundtrip "pong" (Wire.Pong { seq = 81 });
  check_msg_roundtrip "shutdown" Wire.Shutdown

let test_float_exactness () =
  (* The bits that make or break distributed determinism: scores must
     cross the wire without rounding. *)
  let awkward =
    [ 0.1; 1. /. 3.; Float.pi; 1e-300; max_float; min_float; -0.; 4.9e-324 ]
  in
  let msg = Wire.Result { index = 0; outcome = Wire.Candidate_result { scores = awkward } } in
  match Wire.of_sexp (Wire.to_sexp msg) with
  | Ok (Wire.Result { outcome = Wire.Candidate_result { scores }; _ }) ->
    List.iter2
      (fun a b ->
        Alcotest.(check int64)
          (Printf.sprintf "bits of %h" a)
          (Int64.bits_of_float a) (Int64.bits_of_float b))
      awkward scores
  | Ok _ -> Alcotest.fail "decoded to a different message"
  | Error e -> Alcotest.failf "decode failed: %s" e

let prop_specimen_roundtrip =
  let gen =
    QCheck.Gen.(
      map
        (fun ((n, link, rtt), (seed, off_mean, on_s)) ->
          {
            Net_model.n;
            spec_link_mbps = link;
            rtt_s = rtt;
            workload =
              {
                Remy_sim.Workload.off_time = Remy_util.Dist.Exponential off_mean;
                on_spec = Remy_sim.Workload.By_time (Remy_util.Dist.Constant on_s);
              };
            spec_seed = seed;
          })
        (pair
           (triple (int_range 1 32) (float_bound_exclusive 1000.)
              (float_bound_exclusive 2.))
           (triple (int_range 0 1000000) (float_bound_exclusive 10.)
              (float_bound_exclusive 10.))))
  in
  QCheck.Test.make ~name:"specimen roundtrip preserves rendering" ~count:200
    (QCheck.make gen) (fun spec ->
      match Wire.specimen_of_sexp (Wire.specimen_to_sexp spec) with
      | Error _ -> false
      | Ok spec' ->
        Sexp.to_string (Wire.specimen_to_sexp spec)
        = Sexp.to_string (Wire.specimen_to_sexp spec'))

(* --- worker handshake and protocol discipline ------------------------- *)

(* Drive [Worker.serve] in-process: pre-load the coordinator side of a
   socketpair with input (tiny frames, well under the socket buffer),
   close it for writing, then observe what the worker raises and what it
   wrote back. *)
let with_worker ?expect_config feed check =
  let coord, work = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close coord with Unix.Unix_error _ -> ());
      try Unix.close work with Unix.Unix_error _ -> ())
    (fun () ->
      feed coord;
      Unix.shutdown coord Unix.SHUTDOWN_SEND;
      let outcome =
        match Worker.serve ?expect_config work with
        | () -> Ok ()
        | exception Worker.Protocol_error msg -> Error msg
      in
      check coord outcome)

let read_msg fd =
  match Frame.read fd with
  | Ok s -> (
    match Wire.of_sexp s with
    | Ok m -> m
    | Error e -> Alcotest.failf "worker sent unparseable message: %s" e)
  | Error Frame.Eof -> Alcotest.fail "worker closed without replying"
  | Error (Frame.Corrupt d) -> Alcotest.failf "worker sent corrupt frame: %s" d

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  go 0

let test_worker_version_skew () =
  with_worker
    (fun coord ->
      Frame.write coord
        (Wire.to_sexp
           (Wire.Hello
              { version = Wire.version + 1; config_hash = "cafe"; params })))
    (fun coord outcome ->
      (match outcome with
      | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "raised: %s" msg)
          true
          (contains msg "version mismatch")
      | Ok () -> Alcotest.fail "worker accepted a wrong protocol version");
      match read_msg coord with
      | Wire.Reject { reason } ->
        Alcotest.(check bool) "reject names both versions" true
          (contains reason (string_of_int Wire.version)
          && contains reason (string_of_int (Wire.version + 1)))
      | _ -> Alcotest.fail "expected Reject")

let test_worker_config_skew () =
  with_worker ~expect_config:"feedface"
    (fun coord ->
      Frame.write coord
        (Wire.to_sexp
           (Wire.Hello { version = Wire.version; config_hash = "deadbeef"; params })))
    (fun coord outcome ->
      (match outcome with
      | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "raised: %s" msg)
          true
          (contains msg "config fingerprint mismatch")
      | Ok () -> Alcotest.fail "worker accepted a mismatched config");
      match read_msg coord with
      | Wire.Reject { reason } ->
        Alcotest.(check bool) "reject names both fingerprints" true
          (contains reason "deadbeef" && contains reason "feedface")
      | _ -> Alcotest.fail "expected Reject")

let test_worker_corrupt_frame () =
  with_worker
    (fun coord -> ignore (Unix.write_substring coord "XXXXXXXXXX" 0 10))
    (fun _ outcome ->
      match outcome with
      | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "raised: %s" msg)
          true
          (contains msg "corrupt frame" && contains msg "byte 0")
      | Ok () -> Alcotest.fail "worker swallowed a corrupt frame")

let test_worker_task_discipline () =
  (* A task before hello/tree sync is a protocol violation, not a
     silently-wrong evaluation. *)
  with_worker
    (fun coord ->
      Frame.write coord
        (Wire.to_sexp
           (Wire.Task { index = 0; task = Wire.Baseline { spec = specimen () } })))
    (fun _ outcome ->
      match outcome with
      | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "raised: %s" msg)
          true (contains msg "task before hello")
      | Ok () -> Alcotest.fail "worker evaluated before handshake")

(* --- coordinator ------------------------------------------------------ *)

let test_specs_of_string () =
  (match Coordinator.specs_of_string "3" with
  | Ok [ Coordinator.Fork; Coordinator.Fork; Coordinator.Fork ] -> ()
  | Ok _ -> Alcotest.fail "bare 3 should mean three forks"
  | Error e -> Alcotest.failf "bare 3 rejected: %s" e);
  (match Coordinator.specs_of_string "127.0.0.1:9101,host:9102" with
  | Ok [ Coordinator.Connect "127.0.0.1:9101"; Coordinator.Connect "host:9102" ] ->
    ()
  | Ok _ -> Alcotest.fail "endpoint list parsed wrong"
  | Error e -> Alcotest.failf "endpoint list rejected: %s" e);
  (match Coordinator.specs_of_string "0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "0 workers should be rejected");
  match Coordinator.specs_of_string "host:notaport" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad port should be rejected"

let model = Net_model.onex ~sim_duration:1.0 ()

let dist_params =
  {
    Wire.objective = Objective.proportional ~delta:1.0;
    queue_capacity = model.Net_model.queue_capacity;
    duration = model.Net_model.sim_duration;
    topology = model.Net_model.topology;
  }

let test_chaos_kill_reissues () =
  (* Two worker processes, one SIGKILLed right after its second task
     dispatch: the grid must still reduce to exactly the single-process
     answer, with the loss and reissue surfaced as events. *)
  let tree = interesting_tree () in
  let specs = Net_model.draw_many model (Remy_util.Prng.create 11) 8 in
  let events = ref [] in
  let coord =
    Coordinator.create
      ~on_event:(fun e -> events := e :: !events)
      ~chaos_kill_after:2 ~params:dist_params ~config_hash:"test-chaos"
      ~workers:[ spawn_spec; spawn_spec ] ()
  in
  Fun.protect
    ~finally:(fun () -> Coordinator.shutdown coord)
    (fun () ->
      Alcotest.(check int) "both workers joined" 2 (Coordinator.live_workers coord);
      let backend = Coordinator.backend coord ~incremental:true in
      let dist_tally =
        Tally.create ~capacity:(Rule_tree.capacity tree) ~seed:1 ()
      in
      let result, cache = backend.Optimizer.eval_baseline ~tally:dist_tally tree specs in
      let reference =
        Evaluator.score ~domains:1 ~objective:dist_params.Wire.objective
          ~queue_capacity:dist_params.Wire.queue_capacity
          ~duration:dist_params.Wire.duration tree specs
      in
      Alcotest.(check (float 0.)) "mean bit-identical to single-process"
        reference.Evaluator.mean_score result.Evaluator.mean_score;
      Alcotest.(check (list (float 0.))) "sender scores bit-identical"
        reference.Evaluator.sender_scores result.Evaluator.sender_scores;
      Alcotest.(check int) "cache per specimen" (List.length specs)
        (Array.length cache);
      let lost =
        List.exists (function Coordinator.Worker_lost _ -> true | _ -> false)
          !events
      and reissued =
        List.exists (function Coordinator.Task_reissued _ -> true | _ -> false)
          !events
      in
      Alcotest.(check bool) "worker loss surfaced" true lost;
      Alcotest.(check bool) "task reissue surfaced" true reissued;
      Alcotest.(check int) "one worker survives" 1
        (Coordinator.live_workers coord);
      (* The tally merged from worker exports must match the in-process
         merge — counts and samples both, since medians split on them. *)
      let ref_tally = Tally.create ~capacity:(Rule_tree.capacity tree) ~seed:1 () in
      ignore
        (Evaluator.score ~tally:ref_tally ~domains:1
           ~objective:dist_params.Wire.objective
           ~queue_capacity:dist_params.Wire.queue_capacity
           ~duration:dist_params.Wire.duration tree specs);
      List.iter
        (fun id ->
          Alcotest.(check int)
            (Printf.sprintf "rule %d count" id)
            (Tally.count ref_tally id) (Tally.count dist_tally id);
          Alcotest.(check bool)
            (Printf.sprintf "rule %d samples" id)
            true
            (Tally.samples ref_tally id = Tally.samples dist_tally id))
        (Rule_tree.live_ids tree))

let test_candidates_match_inprocess () =
  (* The sharded candidates x resim grid reduces to the pool path's
     exact floats, cache hits included. *)
  let tree = interesting_tree () in
  let specs = Net_model.draw_many model (Remy_util.Prng.create 13) 4 in
  let candidates =
    [|
      { Action.multiple = 0.5; increment = 1.; intersend_ms = 1. };
      { Action.multiple = 1.0; increment = -1.; intersend_ms = 0.5 };
    |]
  in
  let coord =
    Coordinator.create ~params:dist_params ~config_hash:"test-cand"
      ~workers:[ spawn_spec; spawn_spec ] ()
  in
  Fun.protect
    ~finally:(fun () -> Coordinator.shutdown coord)
    (fun () ->
      let backend = Coordinator.backend coord ~incremental:true in
      let _, cache = backend.Optimizer.eval_baseline tree specs in
      let rule = List.hd (Rule_tree.live_ids tree) in
      let dist_scores, (dist_sims, dist_skips) =
        backend.Optimizer.eval_candidates tree ~rule candidates cache
      in
      Par.Pool.with_pool ~domains:1 (fun pool ->
          let pool_scores, (pool_sims, pool_skips) =
            Evaluator.candidate_scores ~pool ~incremental:true
              ~objective:dist_params.Wire.objective
              ~queue_capacity:dist_params.Wire.queue_capacity
              ~duration:dist_params.Wire.duration tree ~rule candidates cache
          in
          Alcotest.(check (array (float 0.))) "candidate scores bit-identical"
            pool_scores dist_scores;
          Alcotest.(check int) "same simulations" pool_sims dist_sims;
          Alcotest.(check int) "same skips" pool_skips dist_skips))

(* --- tally export ----------------------------------------------------- *)

let test_tally_export_equivalence () =
  let capacity = 8 in
  let rng = Remy_util.Prng.create 99 in
  let src = Tally.create ~reservoir:4 ~capacity ~seed:5 () in
  for _ = 1 to 200 do
    Tally.record src
      (Remy_util.Prng.int rng capacity)
      (mem (Remy_util.Prng.float rng 200.) (Remy_util.Prng.float rng 200.)
         (Remy_util.Prng.float rng 4.))
  done;
  (* export lists only fired slots, ids ascending *)
  let exported = Tally.export src in
  List.iter (fun (_, count, _) -> Alcotest.(check bool) "fired" true (count > 0)) exported;
  Alcotest.(check bool) "ids ascending" true
    (List.sort compare (List.map (fun (id, _, _) -> id) exported)
    = List.map (fun (id, _, _) -> id) exported);
  (* merge_exported (export src) must equal merge_into src, bit for bit,
     including reservoir decisions — that is what makes a worker's
     shipped tally indistinguishable from a local one. *)
  let base () =
    let t = Tally.create ~reservoir:4 ~capacity ~seed:7 () in
    for i = 0 to capacity - 1 do
      Tally.record t i (mem 1. 1. 1.)
    done;
    t
  in
  let via_into = base () and via_export = base () in
  Tally.merge_into via_into src;
  Tally.merge_exported via_export exported;
  for id = 0 to capacity - 1 do
    Alcotest.(check int)
      (Printf.sprintf "slot %d count" id)
      (Tally.count via_into id) (Tally.count via_export id);
    Alcotest.(check bool)
      (Printf.sprintf "slot %d samples" id)
      true
      (Tally.samples via_into id = Tally.samples via_export id)
  done

let tests =
  [
    QCheck_alcotest.to_alcotest prop_frame_roundtrip;
    QCheck_alcotest.to_alcotest prop_frame_roundtrip_fd;
    Alcotest.test_case "framing violations named with positions" `Quick
      test_frame_rejections;
    Alcotest.test_case "clean close is Eof" `Quick test_frame_read_eof;
    Alcotest.test_case "torn stream is Corrupt" `Quick test_frame_read_torn;
    Alcotest.test_case "message roundtrips" `Quick test_msg_roundtrips;
    Alcotest.test_case "float scores cross the wire bit-exactly" `Quick
      test_float_exactness;
    QCheck_alcotest.to_alcotest prop_specimen_roundtrip;
    Alcotest.test_case "worker rejects version skew" `Quick
      test_worker_version_skew;
    Alcotest.test_case "worker rejects config skew" `Quick
      test_worker_config_skew;
    Alcotest.test_case "worker aborts on corrupt frame" `Quick
      test_worker_corrupt_frame;
    Alcotest.test_case "worker refuses tasks before handshake" `Quick
      test_worker_task_discipline;
    Alcotest.test_case "--workers spec parsing" `Quick test_specs_of_string;
    Alcotest.test_case "chaos kill reissues, result bit-identical" `Slow
      test_chaos_kill_reissues;
    Alcotest.test_case "sharded candidates match the pool path" `Slow
      test_candidates_match_inprocess;
    Alcotest.test_case "tally export/merge equivalence" `Quick
      test_tally_export_equivalence;
  ]
