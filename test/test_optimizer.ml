open Remy

(* Keep these tiny: the optimizer is exercised for real by remy_train;
   here we verify the search loop's mechanics. *)

let tiny_model =
  { (Net_model.onex ~sim_duration:2.0 ()) with Net_model.max_senders = 1 }

let config ?(max_epochs = 1) ?(wall = 300.) ?(rounds = 6) ?(domains = 1)
    ?(incremental = true) () =
  Optimizer.default_config ~specimens_per_step:3 ~domains
    ~candidate_multipliers:[ 1. ] ~rounds_per_rule:rounds ~max_epochs
    ~incremental ~wall_budget_s:wall ~seed:5 ~model:tiny_model
    ~objective:(Objective.proportional ~delta:1.0) ()

let test_improves_score () =
  let report = Optimizer.design (config ()) in
  Alcotest.(check bool) "some improvement found" true (report.Optimizer.improvements > 0);
  Alcotest.(check bool) "score finite" true (Float.is_finite report.Optimizer.final_score);
  (* The default single rule (b = 1) is far from optimal on a 15 Mbps
     link; any improvement run must beat its baseline score. *)
  let specimens = Net_model.draw_many tiny_model (Remy_util.Prng.create 123) 4 in
  let score tree =
    (Evaluator.score ~domains:1 ~objective:(Objective.proportional ~delta:1.0)
       ~queue_capacity:tiny_model.Net_model.queue_capacity
       ~duration:tiny_model.Net_model.sim_duration tree specimens)
      .Evaluator.mean_score
  in
  let default_score = score (Rule_tree.create ()) in
  let trained_score = score report.Optimizer.tree in
  Alcotest.(check bool) "trained beats default" true (trained_score > default_score)

let test_epoch_accounting () =
  let report = Optimizer.design (config ~max_epochs:2 ~wall:60. ()) in
  Alcotest.(check bool) "epochs advanced" true (report.Optimizer.epochs >= 1);
  Alcotest.(check bool) "evaluations counted" true (report.Optimizer.evaluations > 0)

let test_deterministic_given_seed () =
  (* rounds_per_rule bounds the search deterministically, so two runs
     with the same seed must agree exactly. *)
  let r1 = Optimizer.design (config ~rounds:3 ()) in
  let r2 = Optimizer.design (config ~rounds:3 ()) in
  Alcotest.(check int) "same improvements" r1.Optimizer.improvements r2.Optimizer.improvements;
  Alcotest.(check (float 0.)) "same final score" r1.Optimizer.final_score
    r2.Optimizer.final_score

(* The tentpole's safety property: neither the domain count nor the
   incremental specimen cache may influence the designed table — only
   wall time.  Compare the serialized trees (actions, structure) and the
   exact final score bits. *)
let check_same_design label (a : Optimizer.report) (b : Optimizer.report) =
  Alcotest.(check string)
    (label ^ ": identical rule table")
    (Remy_util.Sexp.to_string (Rule_tree.to_sexp a.Optimizer.tree))
    (Remy_util.Sexp.to_string (Rule_tree.to_sexp b.Optimizer.tree));
  Alcotest.(check (float 0.))
    (label ^ ": identical final score")
    a.Optimizer.final_score b.Optimizer.final_score;
  Alcotest.(check int)
    (label ^ ": identical evaluations")
    a.Optimizer.evaluations b.Optimizer.evaluations;
  Alcotest.(check int)
    (label ^ ": identical improvements")
    a.Optimizer.improvements b.Optimizer.improvements

(* A config that subdivides (k_subdivide 1) so the incremental cache has
   rules to skip and the tree shape can expose divergence. *)
let invariance_config ~domains ~incremental =
  Optimizer.default_config ~specimens_per_step:3 ~domains
    ~candidate_multipliers:[ 1. ] ~rounds_per_rule:2 ~k_subdivide:1
    ~max_epochs:2 ~incremental ~wall_budget_s:300. ~seed:5 ~model:tiny_model
    ~objective:(Objective.proportional ~delta:1.0) ()

let test_domain_count_invariant () =
  let r1 = Optimizer.design (invariance_config ~domains:1 ~incremental:true) in
  let r4 = Optimizer.design (invariance_config ~domains:4 ~incremental:true) in
  check_same_design "domains 1 vs 4" r1 r4

let test_incremental_invariant () =
  let on = Optimizer.design (invariance_config ~domains:2 ~incremental:true) in
  let off = Optimizer.design (invariance_config ~domains:2 ~incremental:false) in
  check_same_design "incremental on vs off" on off;
  Alcotest.(check int) "cache off skips nothing" 0 off.Optimizer.spec_skips;
  Alcotest.(check int) "same specimen grid covered"
    (off.Optimizer.spec_sims)
    (on.Optimizer.spec_sims + on.Optimizer.spec_skips);
  Alcotest.(check bool) "cache on skipped some simulations" true
    (on.Optimizer.spec_skips > 0)

let test_prune_agreeing_runs () =
  (* Force subdivision early (K = 1) with a model so easy that children
     rarely learn distinct actions; pruning must keep the tree small and
     the run must not crash. *)
  let cfg =
    Optimizer.default_config ~specimens_per_step:2 ~domains:1
      ~candidate_multipliers:[ 1. ] ~rounds_per_rule:1 ~k_subdivide:1
      ~max_epochs:3 ~prune_agreeing:true ~wall_budget_s:60. ~seed:5
      ~model:tiny_model ~objective:(Objective.proportional ~delta:1.0) ()
  in
  let report = Optimizer.design cfg in
  Alcotest.(check bool) "ran to completion" true (report.Optimizer.epochs >= 1);
  Alcotest.(check bool) "tree stays well-formed" true
    (Rule_tree.num_rules report.Optimizer.tree >= 1)

let test_wall_budget_respected () =
  let t0 = Unix.gettimeofday () in
  let _ = Optimizer.design (config ~max_epochs:100 ~wall:2. ()) in
  let elapsed = Unix.gettimeofday () -. t0 in
  (* One improvement round may overshoot slightly; it must not run the
     full 100 epochs. *)
  Alcotest.(check bool) "stopped near budget" true (elapsed < 30.)

let test_telemetry_one_record_per_epoch () =
  let epochs_seen = ref [] in
  let report =
    Optimizer.design
      ~progress:(fun ev ->
        match ev with
        | Optimizer.Epoch_done e -> epochs_seen := e :: !epochs_seen
        | _ -> ())
      (config ~max_epochs:2 ~wall:60. ())
  in
  let epochs = List.rev !epochs_seen in
  Alcotest.(check int) "one record per completed epoch" report.Optimizer.epochs
    (List.length epochs);
  List.iteri
    (fun i (e : Remy_obs.Telemetry.epoch) ->
      Alcotest.(check int) "epoch numbering" i e.Remy_obs.Telemetry.epoch)
    epochs;
  match List.rev epochs with
  | last :: _ ->
    (* Counters are cumulative, so the final record equals the report. *)
    Alcotest.(check int) "final evaluations" report.Optimizer.evaluations
      last.Remy_obs.Telemetry.evaluations;
    Alcotest.(check int) "final improvements" report.Optimizer.improvements
      last.Remy_obs.Telemetry.improvements;
    Alcotest.(check int) "final subdivisions" report.Optimizer.subdivisions
      last.Remy_obs.Telemetry.subdivisions;
    Alcotest.(check (float 0.)) "final score" report.Optimizer.final_score
      last.Remy_obs.Telemetry.score;
    Alcotest.(check bool) "wall clock advanced" true
      (last.Remy_obs.Telemetry.wall_s >= 0.)
  | [] -> Alcotest.fail "expected at least one epoch"

let test_telemetry_record_roundtrip () =
  let e =
    {
      Remy_obs.Telemetry.epoch = 3;
      live_rules = 8;
      most_used_rule = Some 5;
      evaluations = 120;
      improvements = 14;
      subdivisions = 1;
      score = -2.125;
      wall_s = 12.5;
      domains = 4;
      par_tasks = 480;
      par_spawns = 360;
      par_jobs = 33;
      par_helper_tasks = 120;
      spec_sims = 400;
      spec_skips = 80;
    }
  in
  (match Remy_obs.Telemetry.of_record (Remy_obs.Telemetry.to_record e) with
  | Some back -> Alcotest.(check bool) "round-trips exactly" true (back = e)
  | None -> Alcotest.fail "of_record rejected to_record output");
  let e_none = { e with Remy_obs.Telemetry.most_used_rule = None } in
  match Remy_obs.Telemetry.of_record (Remy_obs.Telemetry.to_record e_none) with
  | Some back -> Alcotest.(check bool) "None rule round-trips" true (back = e_none)
  | None -> Alcotest.fail "of_record rejected record without most_used_rule"

let tests =
  [
    Alcotest.test_case "improves over default rule" `Slow test_improves_score;
    Alcotest.test_case "epoch accounting" `Slow test_epoch_accounting;
    Alcotest.test_case "deterministic given seed" `Slow test_deterministic_given_seed;
    Alcotest.test_case "design invariant to domain count" `Slow
      test_domain_count_invariant;
    Alcotest.test_case "design invariant to incremental cache" `Slow
      test_incremental_invariant;
    Alcotest.test_case "prune-agreeing mode runs" `Slow test_prune_agreeing_runs;
    Alcotest.test_case "wall budget respected" `Slow test_wall_budget_respected;
    Alcotest.test_case "telemetry: one record per epoch" `Slow
      test_telemetry_one_record_per_epoch;
    Alcotest.test_case "telemetry record round-trip" `Quick
      test_telemetry_record_roundtrip;
  ]
