open Remy

(* Keep these tiny: the optimizer is exercised for real by remy_train;
   here we verify the search loop's mechanics. *)

let tiny_model =
  { (Net_model.onex ~sim_duration:2.0 ()) with Net_model.max_senders = 1 }

let config ?(max_epochs = 1) ?(wall = 300.) ?(rounds = 6) ?(domains = 1)
    ?(incremental = true) () =
  Optimizer.default_config ~specimens_per_step:3 ~domains
    ~candidate_multipliers:[ 1. ] ~rounds_per_rule:rounds ~max_epochs
    ~incremental ~wall_budget_s:wall ~seed:5 ~model:tiny_model
    ~objective:(Objective.proportional ~delta:1.0) ()

let test_improves_score () =
  let report = Optimizer.design (config ()) in
  Alcotest.(check bool) "some improvement found" true (report.Optimizer.improvements > 0);
  Alcotest.(check bool) "score finite" true (Float.is_finite report.Optimizer.final_score);
  (* The default single rule (b = 1) is far from optimal on a 15 Mbps
     link; any improvement run must beat its baseline score. *)
  let specimens = Net_model.draw_many tiny_model (Remy_util.Prng.create 123) 4 in
  let score tree =
    (Evaluator.score ~domains:1 ~objective:(Objective.proportional ~delta:1.0)
       ~queue_capacity:tiny_model.Net_model.queue_capacity
       ~duration:tiny_model.Net_model.sim_duration tree specimens)
      .Evaluator.mean_score
  in
  let default_score = score (Rule_tree.create ()) in
  let trained_score = score report.Optimizer.tree in
  Alcotest.(check bool) "trained beats default" true (trained_score > default_score)

let test_epoch_accounting () =
  let report = Optimizer.design (config ~max_epochs:2 ~wall:60. ()) in
  Alcotest.(check bool) "epochs advanced" true (report.Optimizer.epochs >= 1);
  Alcotest.(check bool) "evaluations counted" true (report.Optimizer.evaluations > 0)

let test_deterministic_given_seed () =
  (* rounds_per_rule bounds the search deterministically, so two runs
     with the same seed must agree exactly. *)
  let r1 = Optimizer.design (config ~rounds:3 ()) in
  let r2 = Optimizer.design (config ~rounds:3 ()) in
  Alcotest.(check int) "same improvements" r1.Optimizer.improvements r2.Optimizer.improvements;
  Alcotest.(check (float 0.)) "same final score" r1.Optimizer.final_score
    r2.Optimizer.final_score

(* The tentpole's safety property: neither the domain count nor the
   incremental specimen cache may influence the designed table — only
   wall time.  Compare the serialized trees (actions, structure) and the
   exact final score bits. *)
let check_same_design label (a : Optimizer.report) (b : Optimizer.report) =
  Alcotest.(check string)
    (label ^ ": identical rule table")
    (Remy_util.Sexp.to_string (Rule_tree.to_sexp a.Optimizer.tree))
    (Remy_util.Sexp.to_string (Rule_tree.to_sexp b.Optimizer.tree));
  Alcotest.(check (float 0.))
    (label ^ ": identical final score")
    a.Optimizer.final_score b.Optimizer.final_score;
  Alcotest.(check int)
    (label ^ ": identical evaluations")
    a.Optimizer.evaluations b.Optimizer.evaluations;
  Alcotest.(check int)
    (label ^ ": identical improvements")
    a.Optimizer.improvements b.Optimizer.improvements

(* A config that subdivides (k_subdivide 1) so the incremental cache has
   rules to skip and the tree shape can expose divergence. *)
let invariance_config ~domains ~incremental =
  Optimizer.default_config ~specimens_per_step:3 ~domains
    ~candidate_multipliers:[ 1. ] ~rounds_per_rule:2 ~k_subdivide:1
    ~max_epochs:2 ~incremental ~wall_budget_s:300. ~seed:5 ~model:tiny_model
    ~objective:(Objective.proportional ~delta:1.0) ()

let test_domain_count_invariant () =
  let r1 = Optimizer.design (invariance_config ~domains:1 ~incremental:true) in
  let r4 = Optimizer.design (invariance_config ~domains:4 ~incremental:true) in
  check_same_design "domains 1 vs 4" r1 r4

let test_incremental_invariant () =
  let on = Optimizer.design (invariance_config ~domains:2 ~incremental:true) in
  let off = Optimizer.design (invariance_config ~domains:2 ~incremental:false) in
  check_same_design "incremental on vs off" on off;
  Alcotest.(check int) "cache off skips nothing" 0 off.Optimizer.spec_skips;
  Alcotest.(check int) "same specimen grid covered"
    (off.Optimizer.spec_sims)
    (on.Optimizer.spec_sims + on.Optimizer.spec_skips);
  Alcotest.(check bool) "cache on skipped some simulations" true
    (on.Optimizer.spec_skips > 0)

let test_prune_agreeing_runs () =
  (* Force subdivision early (K = 1) with a model so easy that children
     rarely learn distinct actions; pruning must keep the tree small and
     the run must not crash. *)
  let cfg =
    Optimizer.default_config ~specimens_per_step:2 ~domains:1
      ~candidate_multipliers:[ 1. ] ~rounds_per_rule:1 ~k_subdivide:1
      ~max_epochs:3 ~prune_agreeing:true ~wall_budget_s:60. ~seed:5
      ~model:tiny_model ~objective:(Objective.proportional ~delta:1.0) ()
  in
  let report = Optimizer.design cfg in
  Alcotest.(check bool) "ran to completion" true (report.Optimizer.epochs >= 1);
  Alcotest.(check bool) "tree stays well-formed" true
    (Rule_tree.num_rules report.Optimizer.tree >= 1)

let test_wall_budget_respected () =
  let t0 = Unix.gettimeofday () in
  let _ = Optimizer.design (config ~max_epochs:100 ~wall:2. ()) in
  let elapsed = Unix.gettimeofday () -. t0 in
  (* One improvement round may overshoot slightly; it must not run the
     full 100 epochs. *)
  Alcotest.(check bool) "stopped near budget" true (elapsed < 30.)

let test_telemetry_one_record_per_epoch () =
  let epochs_seen = ref [] in
  let report =
    Optimizer.design
      ~progress:(fun ev ->
        match ev with
        | Optimizer.Epoch_done e -> epochs_seen := e :: !epochs_seen
        | _ -> ())
      (config ~max_epochs:2 ~wall:60. ())
  in
  let epochs = List.rev !epochs_seen in
  Alcotest.(check int) "one record per completed epoch" report.Optimizer.epochs
    (List.length epochs);
  List.iteri
    (fun i (e : Remy_obs.Telemetry.epoch) ->
      Alcotest.(check int) "epoch numbering" i e.Remy_obs.Telemetry.epoch)
    epochs;
  match List.rev epochs with
  | last :: _ ->
    (* Counters are cumulative, so the final record equals the report. *)
    Alcotest.(check int) "final evaluations" report.Optimizer.evaluations
      last.Remy_obs.Telemetry.evaluations;
    Alcotest.(check int) "final improvements" report.Optimizer.improvements
      last.Remy_obs.Telemetry.improvements;
    Alcotest.(check int) "final subdivisions" report.Optimizer.subdivisions
      last.Remy_obs.Telemetry.subdivisions;
    Alcotest.(check (float 0.)) "final score" report.Optimizer.final_score
      last.Remy_obs.Telemetry.score;
    Alcotest.(check bool) "wall clock advanced" true
      (last.Remy_obs.Telemetry.wall_s >= 0.)
  | [] -> Alcotest.fail "expected at least one epoch"

(* --- crash-safe training: interrupt, checkpoint, resume -------------- *)

let tmp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "remy-opt-ckpt-%d-%d" (Unix.getpid ()) !n)
    in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir

(* Interrupt after [k] completed rounds, then resume from the forced
   checkpoint: the final table, score and counters must be bit-identical
   to a run that was never interrupted.  This is the tentpole's
   acceptance criterion, exercised at the library level (the CI resume
   job drives the same property through the remy_train binary). *)
let check_resume_bit_identical ~stop_after_rounds =
  let cfg = invariance_config ~domains:2 ~incremental:true in
  let straight = Optimizer.design cfg in
  let dir = tmp_dir () in
  let rounds_seen = ref 0 in
  let part =
    Optimizer.design
      ~progress:(function Optimizer.Improving _ -> incr rounds_seen | _ -> ())
      ~checkpoint:{ Optimizer.dir; every_rounds = 1 }
      ~stop_requested:(fun () -> !rounds_seen >= stop_after_rounds)
      cfg
  in
  Alcotest.(check bool)
    (Printf.sprintf "stop at round %d: interrupted" stop_after_rounds)
    true part.Optimizer.interrupted;
  Alcotest.(check bool) "partial run did less work" true
    (part.Optimizer.evaluations < straight.Optimizer.evaluations);
  let snap =
    match Checkpoint.load ~dir with
    | Ok s -> s
    | Error e -> Alcotest.failf "checkpoint unreadable after interrupt: %s" e
  in
  Alcotest.(check int)
    (Printf.sprintf "snapshot records %d rounds" stop_after_rounds)
    stop_after_rounds snap.Checkpoint.rounds;
  let resumed = Optimizer.design ~resume:snap cfg in
  check_same_design
    (Printf.sprintf "straight vs interrupt-at-%d+resume" stop_after_rounds)
    straight resumed;
  Alcotest.(check int) "same total rounds" straight.Optimizer.rounds
    resumed.Optimizer.rounds

let test_resume_bit_identical_round1 () = check_resume_bit_identical ~stop_after_rounds:1

let test_resume_bit_identical_round3 () = check_resume_bit_identical ~stop_after_rounds:3

let test_resume_chain () =
  (* Interrupt twice in the same run: resume(resume(interrupt)) must
     still match straight-through. *)
  let cfg = invariance_config ~domains:1 ~incremental:true in
  let straight = Optimizer.design cfg in
  let dir = tmp_dir () in
  let stop_at k =
    let seen = ref 0 in
    ( (fun ev -> match ev with Optimizer.Improving _ -> incr seen | _ -> ()),
      fun () -> !seen >= k )
  in
  let p1, s1 = stop_at 1 in
  let r1 =
    Optimizer.design ~progress:p1
      ~checkpoint:{ Optimizer.dir; every_rounds = 1 }
      ~stop_requested:s1 cfg
  in
  Alcotest.(check bool) "first leg interrupted" true r1.Optimizer.interrupted;
  let snap1 =
    match Checkpoint.load ~dir with Ok s -> s | Error e -> Alcotest.failf "%s" e
  in
  let p2, s2 = stop_at 2 in
  let r2 =
    Optimizer.design ~progress:p2
      ~checkpoint:{ Optimizer.dir; every_rounds = 1 }
      ~resume:snap1 ~stop_requested:s2 cfg
  in
  Alcotest.(check bool) "second leg interrupted" true r2.Optimizer.interrupted;
  let snap2 =
    match Checkpoint.load ~dir with Ok s -> s | Error e -> Alcotest.failf "%s" e
  in
  Alcotest.(check bool) "progress accumulated across legs" true
    (snap2.Checkpoint.rounds > snap1.Checkpoint.rounds);
  let final = Optimizer.design ~resume:snap2 cfg in
  check_same_design "straight vs twice-interrupted" straight final

let test_resume_rejects_mismatched_config () =
  let cfg = invariance_config ~domains:1 ~incremental:true in
  let dir = tmp_dir () in
  let seen = ref 0 in
  let _ =
    Optimizer.design
      ~progress:(function Optimizer.Improving _ -> incr seen | _ -> ())
      ~checkpoint:{ Optimizer.dir; every_rounds = 1 }
      ~stop_requested:(fun () -> !seen >= 1)
      cfg
  in
  let snap =
    match Checkpoint.load ~dir with Ok s -> s | Error e -> Alcotest.failf "%s" e
  in
  let other = { cfg with Optimizer.seed = cfg.Optimizer.seed + 1 } in
  (try
     ignore (Optimizer.design ~resume:snap other);
     Alcotest.fail "resume under a different seed was accepted"
   with Invalid_argument _ -> ());
  (* Budget fields are extendable: a bigger epoch budget must resume. *)
  let extended = { cfg with Optimizer.max_epochs = cfg.Optimizer.max_epochs + 1 } in
  let r = Optimizer.design ~resume:snap extended in
  Alcotest.(check bool) "extended budget resumes fine" true
    (r.Optimizer.epochs = extended.Optimizer.max_epochs)

let test_config_fingerprint_scope () =
  let base = invariance_config ~domains:2 ~incremental:true in
  let fp = Optimizer.config_fingerprint in
  Alcotest.(check string) "domains excluded" (fp base)
    (fp { base with Optimizer.domains = 7 });
  Alcotest.(check string) "incremental excluded" (fp base)
    (fp { base with Optimizer.incremental = false });
  Alcotest.(check string) "budgets excluded" (fp base)
    (fp { base with Optimizer.max_epochs = 99; wall_budget_s = 1e9 });
  Alcotest.(check string) "retry policy excluded" (fp base)
    (fp { base with Optimizer.task_retries = 5; stall_timeout_s = Some 60. });
  Alcotest.(check bool) "seed included" true
    (fp base <> fp { base with Optimizer.seed = base.Optimizer.seed + 1 });
  Alcotest.(check bool) "k_subdivide included" true
    (fp base <> fp { base with Optimizer.k_subdivide = 9 });
  Alcotest.(check bool) "objective included" true
    (fp base <> fp { base with Optimizer.objective = Objective.min_potential_delay })

let test_checkpoint_events_emitted () =
  let cfg = invariance_config ~domains:1 ~incremental:true in
  let dir = tmp_dir () in
  let saves = ref 0 in
  let seen = ref 0 in
  let _ =
    Optimizer.design
      ~progress:(fun ev ->
        match ev with
        | Optimizer.Checkpoint_saved { path; duration_s; _ } ->
          incr saves;
          Alcotest.(check string) "event names the file" (Checkpoint.file ~dir) path;
          Alcotest.(check bool) "duration nonnegative" true (duration_s >= 0.)
        | Optimizer.Improving _ -> incr seen
        | _ -> ())
      ~checkpoint:{ Optimizer.dir; every_rounds = 1 }
      ~stop_requested:(fun () -> !seen >= 1)
      cfg
  in
  (* Initial checkpoint + the forced one at the interrupt, at least. *)
  Alcotest.(check bool) "checkpoints written" true (!saves >= 2);
  Alcotest.(check bool) "file exists" true (Sys.file_exists (Checkpoint.file ~dir))

let test_telemetry_record_roundtrip () =
  let e =
    {
      Remy_obs.Telemetry.epoch = 3;
      live_rules = 8;
      most_used_rule = Some 5;
      evaluations = 120;
      improvements = 14;
      subdivisions = 1;
      score = -2.125;
      wall_s = 12.5;
      domains = 4;
      par_tasks = 480;
      par_spawns = 360;
      par_jobs = 33;
      par_helper_tasks = 120;
      spec_sims = 400;
      spec_skips = 80;
    }
  in
  (match Remy_obs.Telemetry.of_record (Remy_obs.Telemetry.to_record e) with
  | Some back -> Alcotest.(check bool) "round-trips exactly" true (back = e)
  | None -> Alcotest.fail "of_record rejected to_record output");
  let e_none = { e with Remy_obs.Telemetry.most_used_rule = None } in
  match Remy_obs.Telemetry.of_record (Remy_obs.Telemetry.to_record e_none) with
  | Some back -> Alcotest.(check bool) "None rule round-trips" true (back = e_none)
  | None -> Alcotest.fail "of_record rejected record without most_used_rule"

let test_robustness_record_roundtrip () =
  let events =
    [
      Remy_obs.Telemetry.Checkpoint_written
        { epoch = 2; rounds = 9; duration_s = 0.0125; path = "ckpt/checkpoint.sexp" };
      Remy_obs.Telemetry.Resumed_from
        { epoch = 2; rounds = 9; elapsed_s = 31.5; path = "ckpt/checkpoint.sexp" };
      Remy_obs.Telemetry.Worker_retry
        { task = 17; attempt = 2; error = "Failure(\"boom\")" };
    ]
  in
  List.iter
    (fun e ->
      match
        Remy_obs.Telemetry.robustness_of_record
          (Remy_obs.Telemetry.robustness_to_record e)
      with
      | Some back -> Alcotest.(check bool) "round-trips exactly" true (back = e)
      | None -> Alcotest.fail "robustness_of_record rejected its own encoding")
    events;
  (* The two record families must not decode as each other: that is what
     keeps a mixed telemetry stream unambiguous. *)
  let ep =
    {
      Remy_obs.Telemetry.epoch = 0;
      live_rules = 1;
      most_used_rule = None;
      evaluations = 0;
      improvements = 0;
      subdivisions = 0;
      score = 0.;
      wall_s = 0.;
      domains = 1;
      par_tasks = 0;
      par_spawns = 0;
      par_jobs = 0;
      par_helper_tasks = 0;
      spec_sims = 0;
      spec_skips = 0;
    }
  in
  Alcotest.(check bool) "epoch record is not a robustness event" true
    (Remy_obs.Telemetry.robustness_of_record (Remy_obs.Telemetry.to_record ep)
    = None);
  Alcotest.(check bool) "robustness event is not an epoch record" true
    (Remy_obs.Telemetry.of_record
       (Remy_obs.Telemetry.robustness_to_record (List.hd events))
    = None)

let test_sink_append_mode () =
  let write_batch ~append path events =
    let sink = Remy_obs.Sink.to_file ~append path in
    List.iter (Remy_obs.Telemetry.write_robustness sink) events;
    Remy_obs.Sink.close sink
  in
  let ck rounds =
    Remy_obs.Telemetry.Checkpoint_written
      { epoch = 0; rounds; duration_s = 0.001; path = "ckpt" }
  in
  (* JSONL: appending keeps the old lines. *)
  let jsonl = Filename.temp_file "telemetry" ".jsonl" in
  write_batch ~append:false jsonl [ ck 1; ck 2 ];
  write_batch ~append:true jsonl [ ck 3 ];
  (match Remy_obs.Sink.read_file jsonl with
  | Error e -> Alcotest.failf "re-reading appended jsonl: %s" e
  | Ok records ->
    Alcotest.(check int) "jsonl keeps earlier records" 3 (List.length records));
  Sys.remove jsonl;
  (* CSV: appending to a non-empty file must not write a second header. *)
  let csv = Filename.temp_file "telemetry" ".csv" in
  write_batch ~append:false csv [ ck 1 ];
  write_batch ~append:true csv [ ck 2; ck 3 ];
  let lines = In_channel.with_open_text csv In_channel.input_lines in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
    scan 0
  in
  (* Only the header row names the [duration_s] column; data rows carry
     its value. *)
  let headers = List.filter (fun l -> contains l "duration_s") lines in
  Alcotest.(check int) "csv rows: one header + three records" 4 (List.length lines);
  Alcotest.(check int) "csv has exactly one header line" 1 (List.length headers);
  (match Remy_obs.Sink.read_file csv with
  | Error e -> Alcotest.failf "re-reading appended csv: %s" e
  | Ok records ->
    Alcotest.(check int) "csv keeps earlier records" 3 (List.length records));
  Sys.remove csv;
  (* Append into a file that does not exist yet still writes the header. *)
  let fresh = Filename.temp_file "telemetry" ".csv" in
  Sys.remove fresh;
  write_batch ~append:true fresh [ ck 1 ];
  (match Remy_obs.Sink.read_file fresh with
  | Error e -> Alcotest.failf "append-to-fresh csv: %s" e
  | Ok records -> Alcotest.(check int) "header written when empty" 1 (List.length records));
  Sys.remove fresh

let tests =
  [
    Alcotest.test_case "improves over default rule" `Slow test_improves_score;
    Alcotest.test_case "epoch accounting" `Slow test_epoch_accounting;
    Alcotest.test_case "deterministic given seed" `Slow test_deterministic_given_seed;
    Alcotest.test_case "design invariant to domain count" `Slow
      test_domain_count_invariant;
    Alcotest.test_case "design invariant to incremental cache" `Slow
      test_incremental_invariant;
    Alcotest.test_case "prune-agreeing mode runs" `Slow test_prune_agreeing_runs;
    Alcotest.test_case "wall budget respected" `Slow test_wall_budget_respected;
    Alcotest.test_case "telemetry: one record per epoch" `Slow
      test_telemetry_one_record_per_epoch;
    Alcotest.test_case "telemetry record round-trip" `Quick
      test_telemetry_record_roundtrip;
    Alcotest.test_case "robustness record round-trip" `Quick
      test_robustness_record_roundtrip;
    Alcotest.test_case "sink append mode" `Quick test_sink_append_mode;
    Alcotest.test_case "resume after round 1 is bit-identical" `Slow
      test_resume_bit_identical_round1;
    Alcotest.test_case "resume after round 3 is bit-identical" `Slow
      test_resume_bit_identical_round3;
    Alcotest.test_case "twice-interrupted resume chain" `Slow test_resume_chain;
    Alcotest.test_case "resume guards the config fingerprint" `Slow
      test_resume_rejects_mismatched_config;
    Alcotest.test_case "config fingerprint scope" `Quick test_config_fingerprint_scope;
    Alcotest.test_case "checkpoint events emitted" `Slow
      test_checkpoint_events_emitted;
  ]
