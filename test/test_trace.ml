(* The tracing acceptance tests: sinks round-trip records exactly, a
   disabled tracer is a no-op, tracing never changes simulation results
   (bit-identical with the tracer off, on, or probing), event order
   follows the engine clock, and every queue discipline emits events. *)

open Remy_sim
open Remy_cc
module R = Remy_obs.Record
module Sink = Remy_obs.Sink
module Trace = Remy_obs.Trace

let value = Alcotest.testable (fun ppf v -> Fmt.string ppf (R.to_json [ ("v", v) ])) ( = )

let find_exn key r =
  match R.find key r with
  | Some v -> v
  | None -> Alcotest.failf "field %s missing in %s" key (R.to_json r)

let ev r = match find_exn "ev" r with R.Str s -> s | _ -> Alcotest.fail "ev not a string"
let t_of r = match R.to_float (find_exn "t" r) with Some t -> t | None -> Alcotest.fail "t"

(* --- codec round-trips --------------------------------------------- *)

let sample_record =
  [
    ("t", R.Float 1.5);
    ("ev", R.Str "enqueue");
    ("flow", R.Int 3);
    ("ok", R.Bool true);
    ("name", R.Str "with \"quotes\" and \\ and unicode \xc3\xa9");
  ]

let test_json_roundtrip () =
  match R.of_json (R.to_json sample_record) with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok r ->
    List.iter
      (fun (k, v) -> Alcotest.check value k v (find_exn k r))
      sample_record

let test_csv_roundtrip () =
  (* CSV is unquoted, so stick to the trace schema's clean fields. *)
  let record =
    [ ("t", R.Float 0.25); ("ev", R.Str "drop"); ("flow", R.Int 1); ("qlen", R.Int 7) ]
  in
  let columns = [ "t"; "ev"; "q"; "flow"; "qlen" ] in
  let line = R.to_csv ~columns record in
  let back = R.of_csv ~header:columns line in
  Alcotest.check value "t" (R.Float 0.25) (find_exn "t" back);
  Alcotest.check value "ev" (R.Str "drop") (find_exn "ev" back);
  Alcotest.check value "flow" (R.Int 1) (find_exn "flow" back);
  Alcotest.(check bool) "empty cell omitted" true (R.find "q" back = None)

let test_file_roundtrip format () =
  let suffix = match format with `Jsonl -> ".jsonl" | `Csv -> ".csv" in
  let path = Filename.temp_file "trace_test" suffix in
  let sink =
    match format with
    | `Jsonl -> Sink.to_file path
    | `Csv -> Sink.to_file ~columns:Trace.columns path
  in
  let tracer = Trace.make sink in
  Trace.packet_event tracer ~now:0.5 ~kind:Trace.Enqueue ~queue:"droptail"
    ~flow:0 ~seq:12 ~size:1500 ~qlen:3 ();
  Trace.queue_sample tracer ~now:1.0 ~queue:"droptail" ~qlen:2 ~qbytes:3000;
  Trace.close tracer;
  (match Sink.read_file path with
  | Error msg -> Alcotest.failf "read back: %s" msg
  | Ok [ a; b ] ->
    Alcotest.(check string) "first ev" "enqueue" (ev a);
    Alcotest.check value "seq" (R.Int 12) (find_exn "seq" a);
    Alcotest.(check string) "second ev" "qsample" (ev b);
    Alcotest.check value "qbytes" (R.Int 3000) (find_exn "qbytes" b)
  | Ok l -> Alcotest.failf "expected 2 records, got %d" (List.length l));
  Sys.remove path

(* --- disabled tracer ------------------------------------------------ *)

let test_disabled_noop () =
  Alcotest.(check bool) "off is off" false (Trace.is_on Trace.off);
  (* Emitting through the disabled tracer must be safe and silent. *)
  Trace.packet_event Trace.off ~now:0. ~kind:Trace.Drop ~queue:"q" ~flow:0
    ~seq:0 ~size:0 ~qlen:0 ();
  Trace.note Trace.off ~now:0. [ ("k", R.Str "v") ];
  Trace.close Trace.off

(* --- simulation wiring ---------------------------------------------- *)

let config ~qdisc ~cc ~n ~duration ~seed =
  {
    Dumbbell.service = Dumbbell.Rate_mbps 10.;
    qdisc;
    flows =
      Array.init n (fun _ ->
          {
            Dumbbell.cc;
            rtt = 0.05;
            workload = Workload.saturating;
            start = `Immediate;
          });
    duration;
    seed;
    min_rto = 0.2;
  }

let run_traced ?probe_interval cfg =
  let sink, read = Sink.memory () in
  let result = Dumbbell.run ~tracer:(Trace.make sink) ?probe_interval cfg in
  (result, read ())

let test_tracing_preserves_results () =
  (* The determinism contract: results are bit-identical whether the
     tracer is absent, attached, or attached with probes. *)
  let cfg () =
    config ~qdisc:(Dumbbell.Droptail 20) ~cc:(Newreno.factory ()) ~n:2
      ~duration:5. ~seed:42
  in
  let plain = Dumbbell.run (cfg ()) in
  let traced, records = run_traced ~probe_interval:0.1 (cfg ()) in
  Alcotest.(check bool) "trace not empty" true (List.length records > 0);
  Alcotest.(check bool) "flow summaries identical" true
    (plain.Dumbbell.flows = traced.Dumbbell.flows);
  Alcotest.(check int) "drops identical" plain.Dumbbell.drops traced.Dumbbell.drops;
  Alcotest.(check int) "delivered identical" plain.Dumbbell.delivered
    traced.Dumbbell.delivered;
  Alcotest.(check (float 0.)) "utilization identical"
    plain.Dumbbell.mean_utilization traced.Dumbbell.mean_utilization

let test_event_ordering () =
  let _, records =
    run_traced
      (config ~qdisc:(Dumbbell.Droptail 20) ~cc:(Newreno.factory ()) ~n:2
         ~duration:3. ~seed:9)
  in
  (* Events appear in engine-clock order. *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "t non-decreasing" true (t_of a <= t_of b);
      monotone rest
    | _ -> ()
  in
  monotone records;
  (* Per packet, enqueue <= dequeue <= deliver. *)
  let first_time = Hashtbl.create 64 in
  List.iter
    (fun r ->
      match (ev r, R.find "flow" r, R.find "seq" r) with
      | (("enqueue" | "dequeue" | "deliver") as e), Some (R.Int flow), Some (R.Int seq)
        ->
        let k = (e, flow, seq) in
        if not (Hashtbl.mem first_time k) then Hashtbl.add first_time k (t_of r)
      | _ -> ())
    records;
  let checked = ref 0 in
  Hashtbl.iter
    (fun (e, flow, seq) t ->
      if e = "deliver" then begin
        (match Hashtbl.find_opt first_time ("enqueue", flow, seq) with
        | Some t_enq ->
          incr checked;
          Alcotest.(check bool) "enqueue before deliver" true (t_enq <= t)
        | None -> Alcotest.failf "deliver without enqueue (flow %d seq %d)" flow seq);
        match Hashtbl.find_opt first_time ("dequeue", flow, seq) with
        | Some t_deq ->
          Alcotest.(check bool) "dequeue before deliver" true (t_deq <= t)
        | None -> Alcotest.failf "deliver without dequeue (flow %d seq %d)" flow seq
      end)
    first_time;
  Alcotest.(check bool) "some packets delivered" true (!checked > 0)

let count_ev ?queue records kind =
  List.length
    (List.filter
       (fun r ->
         ev r = kind
         && match queue with None -> true | Some q -> R.find "q" r = Some (R.Str q))
       records)

let test_all_qdiscs_traced () =
  (* Every bottleneck queue discipline reports through the tracer under
     the queue name trace-summary will aggregate by. *)
  let cases =
    [
      ("droptail", Dumbbell.Droptail 10, Newreno.factory ());
      ("codel", Dumbbell.Codel 40, Newreno.factory ());
      ("sfqcodel", Dumbbell.Sfq_codel 40, Newreno.factory ());
      ( "dctcp-red",
        Dumbbell.Dctcp_red { capacity = 100; threshold = 5 },
        Dctcp.factory () );
      ("xcp", Dumbbell.Xcp 100, Xcp.factory ());
    ]
  in
  List.iter
    (fun (qname, qdisc, cc) ->
      let _, records = run_traced (config ~qdisc ~cc ~n:2 ~duration:5. ~seed:11) in
      let has kind = count_ev ~queue:qname records kind > 0 in
      Alcotest.(check bool) (qname ^ " enqueues") true (has "enqueue");
      Alcotest.(check bool) (qname ^ " dequeues") true (has "dequeue");
      Alcotest.(check bool) (qname ^ " delivers") true (has "deliver");
      if qname = "dctcp-red" then
        Alcotest.(check bool) "dctcp-red marks" true (has "ecn_mark"))
    cases

let test_red_marks_and_drops () =
  (* Classic RED is not a Dumbbell pairing, so exercise it directly:
     weight 1.0 makes the EWMA track the instantaneous queue, so pushing
     past max_th forces marks (ECN-capable) and early drops (not). *)
  let sink, read = Sink.memory () in
  let tracer = Trace.make sink in
  let q =
    Red.create ~tracer ~capacity:1000 ~min_th:0. ~max_th:2. ~max_p:1.0
      ~weight:1.0 ~seed:1 ()
  in
  for seq = 0 to 9 do
    ignore
      (q.Qdisc.enqueue ~now:0.
         (Packet.make ~flow:0 ~seq ~conn:0 ~now:0. ~ecn_capable:true ()))
  done;
  for seq = 10 to 14 do
    ignore (q.Qdisc.enqueue ~now:0. (Packet.make ~flow:0 ~seq ~conn:0 ~now:0. ()))
  done;
  ignore (q.Qdisc.dequeue ~now:0.1);
  let records = read () in
  Alcotest.(check bool) "red marks" true (count_ev ~queue:"red" records "ecn_mark" > 0);
  Alcotest.(check bool) "red early-drops" true (count_ev ~queue:"red" records "drop" > 0);
  Alcotest.(check int) "red dequeues" 1 (count_ev ~queue:"red" records "dequeue")

let test_timeout_traced () =
  (* Heavy stochastic loss forces RTO episodes; each emits a host-side
     timeout event. *)
  let result, records =
    run_traced
      (config
         ~qdisc:(Dumbbell.With_loss (0.35, Dumbbell.Droptail 1000))
         ~cc:(Newreno.factory ()) ~n:1 ~duration:20. ~seed:3)
  in
  ignore result;
  Alcotest.(check bool) "timeouts traced" true (count_ev records "timeout" > 0);
  Alcotest.(check bool) "random drops traced" true
    (count_ev ~queue:"droptail+loss" records "drop" > 0)

let test_fold_file_streams () =
  (* fold_file is the streaming path under trace-summary: it must see
     exactly the records read_file materializes, in order, for both
     encodings, and surface malformed JSONL as an error. *)
  List.iter
    (fun format ->
      let _, records =
        run_traced ~probe_interval:0.5
          (config ~qdisc:(Dumbbell.Droptail 10) ~cc:(Newreno.factory ()) ~n:2
             ~duration:2. ~seed:5)
      in
      let suffix = match format with `Jsonl -> ".jsonl" | `Csv -> ".csv" in
      let path = Filename.temp_file "fold_test" suffix in
      let sink =
        match format with
        | `Jsonl -> Sink.to_file path
        | `Csv -> Sink.to_file ~columns:Trace.columns path
      in
      List.iter (Sink.emit sink) records;
      Sink.close sink;
      let materialized =
        match Sink.read_file path with
        | Ok l -> l
        | Error e -> Alcotest.failf "read_file: %s" e
      in
      let folded =
        match Sink.fold_file path ~init:[] (fun acc r -> r :: acc) with
        | Ok l -> List.rev l
        | Error e -> Alcotest.failf "fold_file: %s" e
      in
      Alcotest.(check int)
        (suffix ^ " same record count")
        (List.length materialized) (List.length folded);
      List.iter2
        (fun a b ->
          Alcotest.(check string) (suffix ^ " same record") (R.to_json a)
            (R.to_json b))
        materialized folded;
      Sys.remove path)
    [ `Jsonl; `Csv ];
  let path = Filename.temp_file "fold_test" ".jsonl" in
  let oc = open_out path in
  output_string oc "{\"t\": 1.0, \"ev\": \"note\"}\nnot json at all\n";
  close_out oc;
  (match Sink.fold_file path ~init:0 (fun n _ -> n + 1) with
  | Ok _ -> Alcotest.fail "malformed line accepted"
  | Error _ -> ());
  Sys.remove path

let test_trace_summary_flow_cap () =
  (* Per-flow delay histograms are capped so a 10k-flow trace cannot
     blow summarization up; the aggregate histogram still sees every
     sample. *)
  let module TS = Remy_obs.Trace_summary in
  let n = TS.detailed_flow_cap + 36 in
  let records =
    List.init n (fun flow ->
        [
          ("t", R.Float (float_of_int flow *. 0.001));
          ("ev", R.Str "deliver");
          ("flow", R.Int flow);
          ("delay_s", R.Float 0.004);
        ])
  in
  let s = TS.of_records records in
  Alcotest.(check int) "every flow counted" n (Hashtbl.length s.TS.delivers_by_flow);
  Alcotest.(check int) "detail capped" TS.detailed_flow_cap
    (Hashtbl.length s.TS.delay_by_flow);
  Alcotest.(check bool) "cap flagged" true s.TS.delay_capped;
  Alcotest.(check int) "aggregate sees every sample" n
    (Remy_obs.Histogram.count s.TS.delay_all);
  (* The capped pretty-printer path must not raise. *)
  ignore (Format.asprintf "%a" TS.pp s)

let test_trace_summary_aggregates () =
  let result, records =
    run_traced ~probe_interval:0.5
      (config ~qdisc:(Dumbbell.Droptail 10) ~cc:(Newreno.factory ()) ~n:2
         ~duration:4. ~seed:21)
  in
  let s = Remy_obs.Trace_summary.of_records records in
  Alcotest.(check int) "record count" (List.length records)
    s.Remy_obs.Trace_summary.records;
  Alcotest.(check int) "delivers == link deliveries" result.Dumbbell.delivered
    (Remy_obs.Trace_summary.count s "deliver");
  Alcotest.(check int) "drops == qdisc drops" result.Dumbbell.drops
    (Remy_obs.Trace_summary.count s "drop");
  let qs = Hashtbl.find s.Remy_obs.Trace_summary.by_queue "droptail" in
  Alcotest.(check bool) "occupancy tracked" true
    (qs.Remy_obs.Trace_summary.qlen_samples > 0
    && qs.Remy_obs.Trace_summary.qlen_max <= 10)

let tests =
  [
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "csv round-trip" `Quick test_csv_roundtrip;
    Alcotest.test_case "jsonl file round-trip" `Quick (test_file_roundtrip `Jsonl);
    Alcotest.test_case "csv file round-trip" `Quick (test_file_roundtrip `Csv);
    Alcotest.test_case "disabled tracer is a no-op" `Quick test_disabled_noop;
    Alcotest.test_case "tracing preserves results" `Slow
      test_tracing_preserves_results;
    Alcotest.test_case "event order follows the clock" `Slow test_event_ordering;
    Alcotest.test_case "all qdiscs traced" `Slow test_all_qdiscs_traced;
    Alcotest.test_case "red marks and drops" `Quick test_red_marks_and_drops;
    Alcotest.test_case "timeouts traced" `Slow test_timeout_traced;
    Alcotest.test_case "trace-summary aggregates" `Slow
      test_trace_summary_aggregates;
    Alcotest.test_case "fold_file streams both encodings" `Slow
      test_fold_file_streams;
    Alcotest.test_case "trace-summary caps per-flow detail" `Quick
      test_trace_summary_flow_cap;
  ]
