(* The timing-wheel acceptance tests: the wheel honours the Heap
   contract exactly (QCheck drives identical op sequences through both
   and demands identical outputs, including overflow-horizon and
   below-cursor pushes), the engine fires the same closures in the same
   order on either backend, and a full optimizer design run is
   bit-identical with the wheel on and off — the PR's headline
   invariance property, same shape as test_compiled_index's. *)

open Remy_util
open Remy_sim

(* --- units, mirroring test_heap.ml --------------------------------- *)

let test_ordering () =
  let w = Timing_wheel.create () in
  List.iter
    (fun (p, v) -> Timing_wheel.push w p v)
    [ (3., "c"); (1., "a"); (2., "b") ];
  let order = List.init 3 (fun _ -> snd (Option.get (Timing_wheel.pop w))) in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] order;
  Alcotest.(check bool) "empty after" true (Timing_wheel.is_empty w)

let test_fifo_ties () =
  let w = Timing_wheel.create () in
  List.iter (fun v -> Timing_wheel.push w 1. v) [ "first"; "second"; "third" ];
  Timing_wheel.push w 0.5 "zeroth";
  let order = List.init 4 (fun _ -> snd (Option.get (Timing_wheel.pop w))) in
  Alcotest.(check (list string))
    "FIFO among equal priorities"
    [ "zeroth"; "first"; "second"; "third" ]
    order

let test_sub_tick_ordering () =
  (* Priorities inside one quantization tick (1 µs) must still pop in
     exact-priority order: the drain re-sorts by (prio, seq). *)
  let w = Timing_wheel.create () in
  Timing_wheel.push w 7e-7 "late";
  Timing_wheel.push w 2e-7 "early";
  Timing_wheel.push w 2e-7 "early2";
  Alcotest.(check bool) "exact priority wins inside a tick" true
    (Timing_wheel.pop w = Some (2e-7, "early"));
  Alcotest.(check bool) "FIFO inside a tick" true
    (Timing_wheel.pop w = Some (2e-7, "early2"));
  Alcotest.(check bool) "then the later sub-tick event" true
    (Timing_wheel.pop w = Some (7e-7, "late"))

let test_peek () =
  let w = Timing_wheel.create () in
  Alcotest.(check bool) "peek empty" true (Timing_wheel.peek w = None);
  Timing_wheel.push w 2. 20;
  Timing_wheel.push w 1. 10;
  Alcotest.(check bool) "peek min" true (Timing_wheel.peek w = Some (1., 10));
  Alcotest.(check int) "peek does not pop" 2 (Timing_wheel.size w)

let test_min_prio_and_pop_exn () =
  let w = Timing_wheel.create () in
  Alcotest.(check (float 0.)) "min_prio of empty is infinity" Float.infinity
    (Timing_wheel.min_prio w);
  Alcotest.check_raises "pop_exn on empty raises"
    (Invalid_argument "Timing_wheel.pop_exn: empty wheel") (fun () ->
      ignore (Timing_wheel.pop_exn w));
  Timing_wheel.push w 2. "b";
  Timing_wheel.push w 1. "a";
  Alcotest.(check (float 0.)) "min_prio sees the minimum" 1.
    (Timing_wheel.min_prio w);
  Alcotest.(check string) "pop_exn returns the value alone" "a"
    (Timing_wheel.pop_exn w);
  Alcotest.(check (float 0.)) "min_prio advances" 2. (Timing_wheel.min_prio w);
  Alcotest.(check string) "pop_exn drains in order" "b" (Timing_wheel.pop_exn w);
  Alcotest.(check (float 0.)) "empty again" Float.infinity
    (Timing_wheel.min_prio w)

let test_clear () =
  let w = Timing_wheel.create () in
  for i = 1 to 10 do
    Timing_wheel.push w (float_of_int i) i
  done;
  (* Leave the cursor mid-stream so clear also resets drain state. *)
  ignore (Timing_wheel.pop w);
  Timing_wheel.clear w;
  Alcotest.(check int) "cleared" 0 (Timing_wheel.size w);
  Timing_wheel.push w 1. 1;
  Alcotest.(check bool) "usable after clear" true
    (Timing_wheel.pop w = Some (1., 1))

let test_overflow_horizon () =
  (* The six 32-slot levels cover ~2^30 ticks (~17 min at 1 µs); events
     beyond that sit in the overflow heap and must still interleave
     correctly with near events pushed later. *)
  let w = Timing_wheel.create () in
  Timing_wheel.push w 1e7 "far2";
  Timing_wheel.push w 5e6 "far1";
  Timing_wheel.push w 0.25 "near2";
  Timing_wheel.push w 0.125 "near1";
  Alcotest.(check bool) "near first" true
    (Timing_wheel.pop w = Some (0.125, "near1"));
  Timing_wheel.push w 0.5 "near3";
  let rest = List.init 4 (fun _ -> snd (Option.get (Timing_wheel.pop w))) in
  Alcotest.(check (list string))
    "overflow drains after the wheel, in order"
    [ "near2"; "near3"; "far1"; "far2" ]
    rest;
  Alcotest.(check bool) "empty" true (Timing_wheel.is_empty w)

let test_rewind () =
  (* Pushing below the most recently popped priority is the documented
     O(n) cold path; order must survive it, including from overflow. *)
  let w = Timing_wheel.create () in
  Timing_wheel.push w 10. "ten";
  Timing_wheel.push w 5e6 "overflowed";
  Alcotest.(check bool) "pop ten" true (Timing_wheel.pop w = Some (10., "ten"));
  Timing_wheel.push w 1. "one";
  Timing_wheel.push w (-2.) "minus-two";
  let order = List.init 3 (fun _ -> snd (Option.get (Timing_wheel.pop w))) in
  Alcotest.(check (list string))
    "rewound pops still globally sorted"
    [ "minus-two"; "one"; "overflowed" ]
    order

(* --- QCheck oracle: the Heap is the specification ------------------- *)

(* Random op sequences mixing pushes at three scales — engine-like
   (in-wheel), beyond the top-level horizon (overflow heap), and
   negative/below-cursor (rewind) — with pops.  After the sequence, both
   structures are drained; every intermediate and final observation must
   match the heap's. *)
let op_gen =
  QCheck.Gen.(
    frequency
      [
        (6, map (fun p -> `Push p) (float_range 0. 2000.));
        (2, map (fun p -> `Push p) (float_range 0. 1e-4));
        (1, map (fun p -> `Push p) (float_range 1e6 1e8));
        (1, map (fun p -> `Push p) (float_range (-100.) 100.));
        (4, return `Pop);
      ])

let print_op = function
  | `Push p -> Printf.sprintf "push %h" p
  | `Pop -> "pop"

let ops_arb =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map print_op ops))
    QCheck.Gen.(list_size (int_range 0 400) op_gen)

let prop_wheel_matches_heap =
  QCheck.Test.make ~name:"wheel is observationally identical to heap" ~count:200
    ops_arb (fun ops ->
      let h = Heap.create () and w = Timing_wheel.create () in
      let next = ref 0 in
      let same_pop () =
        let a = Heap.pop h and b = Timing_wheel.pop w in
        (match (a, b) with
        | None, None -> true
        | Some (pa, va), Some (pb, vb) -> pa = pb && va = vb
        | _ -> false)
        && Heap.min_prio h = Timing_wheel.min_prio w
        && Heap.size h = Timing_wheel.size w
      in
      List.for_all
        (fun op ->
          match op with
          | `Push p ->
            let v = !next in
            incr next;
            Heap.push h p v;
            Timing_wheel.push w p v;
            Heap.size h = Timing_wheel.size w
            && Heap.min_prio h = Timing_wheel.min_prio w
          | `Pop -> same_pop ())
        ops
      &&
      let rec drain () = if Heap.is_empty h then true else same_pop () && drain () in
      drain () && Timing_wheel.is_empty w)

let prop_wheel_preserves_all =
  QCheck.Test.make ~name:"wheel returns every pushed element" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 150) (float_range (-10.) 1e7))
    (fun prios ->
      let w = Timing_wheel.create () in
      List.iteri (fun i p -> Timing_wheel.push w p i) prios;
      let rec drain acc =
        match Timing_wheel.pop w with None -> acc | Some (_, v) -> drain (v :: acc)
      in
      let out = List.sort compare (drain []) in
      out = List.init (List.length prios) Fun.id)

(* --- engine-level equivalence --------------------------------------- *)

(* The same schedule — including closures that schedule further events,
   equal-time ties, and sub-microsecond offsets — must fire in the same
   order under both agenda backends.  Firing order is observed as the
   exact (now, id) stream. *)
let run_schedule ~wheel delays =
  let eng = Engine.create ~wheel () in
  let log = ref [] in
  let fire id () = log := (Engine.now eng, id) :: !log in
  List.iteri
    (fun i d ->
      Engine.schedule eng d (fun () ->
          fire i ();
          (* A third of the events spawn children relative to now, one
             of them at zero delay (same-instant tie with siblings). *)
          if i mod 3 = 0 then begin
            Engine.schedule_in eng 0. (fire (i + 10_000));
            Engine.schedule_in eng ((d /. 7.) +. 3.5e-7) (fire (i + 20_000))
          end))
    delays;
  Engine.run eng ~until:1e9;
  List.rev !log

let prop_engine_backend_invariant =
  QCheck.Test.make ~name:"engine fires identically on wheel and heap" ~count:60
    QCheck.(list_of_size Gen.(int_range 0 120) (float_range 0. 1200.))
    (fun delays -> run_schedule ~wheel:true delays = run_schedule ~wheel:false delays)

(* --- full-design invariance (the PR's acceptance property) ----------- *)

open Remy

let tiny_model =
  { (Net_model.onex ~sim_duration:2.0 ()) with Net_model.max_senders = 1 }

let design_config () =
  Optimizer.default_config ~specimens_per_step:3 ~domains:2
    ~candidate_multipliers:[ 1. ] ~rounds_per_rule:2 ~k_subdivide:1
    ~max_epochs:2 ~wall_budget_s:300. ~seed:5 ~model:tiny_model
    ~objective:(Objective.proportional ~delta:1.0) ()

let test_design_invariant_to_wheel () =
  let design_with on =
    Engine.use_wheel on;
    Fun.protect
      ~finally:(fun () -> Engine.use_wheel true)
      (fun () -> Optimizer.design (design_config ()))
  in
  let r_wheel = design_with true in
  let r_heap = design_with false in
  Alcotest.(check string) "identical rule table"
    (Sexp.to_string (Rule_tree.to_sexp r_wheel.Optimizer.tree))
    (Sexp.to_string (Rule_tree.to_sexp r_heap.Optimizer.tree));
  Alcotest.(check (float 0.)) "identical final score (bit-exact)"
    r_wheel.Optimizer.final_score r_heap.Optimizer.final_score;
  Alcotest.(check int) "identical evaluations" r_wheel.Optimizer.evaluations
    r_heap.Optimizer.evaluations;
  Alcotest.(check int) "identical improvements" r_wheel.Optimizer.improvements
    r_heap.Optimizer.improvements

let tests =
  [
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "FIFO ties" `Quick test_fifo_ties;
    Alcotest.test_case "sub-tick ordering" `Quick test_sub_tick_ordering;
    Alcotest.test_case "peek" `Quick test_peek;
    Alcotest.test_case "min_prio and pop_exn" `Quick test_min_prio_and_pop_exn;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "overflow horizon" `Quick test_overflow_horizon;
    Alcotest.test_case "rewind below cursor" `Quick test_rewind;
    QCheck_alcotest.to_alcotest prop_wheel_matches_heap;
    QCheck_alcotest.to_alcotest prop_wheel_preserves_all;
    QCheck_alcotest.to_alcotest prop_engine_backend_invariant;
    Alcotest.test_case "design invariant to agenda backend" `Slow
      test_design_invariant_to_wheel;
  ]
