open Remy_util

let test_ordering () =
  let h = Heap.create () in
  List.iter (fun (p, v) -> Heap.push h p v) [ (3., "c"); (1., "a"); (2., "b") ];
  let order = List.init 3 (fun _ -> snd (Option.get (Heap.pop h))) in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] order;
  Alcotest.(check bool) "empty after" true (Heap.is_empty h)

let test_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h 1. v) [ "first"; "second"; "third" ];
  Heap.push h 0.5 "zeroth";
  let order = List.init 4 (fun _ -> snd (Option.get (Heap.pop h))) in
  Alcotest.(check (list string))
    "FIFO among equal priorities"
    [ "zeroth"; "first"; "second"; "third" ]
    order

let test_peek () =
  let h = Heap.create () in
  Alcotest.(check bool) "peek empty" true (Heap.peek h = None);
  Heap.push h 2. 20;
  Heap.push h 1. 10;
  Alcotest.(check bool) "peek min" true (Heap.peek h = Some (1., 10));
  Alcotest.(check int) "peek does not pop" 2 (Heap.size h)

let test_clear () =
  let h = Heap.create () in
  for i = 1 to 10 do
    Heap.push h (float_of_int i) i
  done;
  Heap.clear h;
  Alcotest.(check int) "cleared" 0 (Heap.size h);
  Heap.push h 1. 1;
  Alcotest.(check bool) "usable after clear" true (Heap.pop h = Some (1., 1))

let test_clear_keeps_capacity () =
  let h = Heap.create () in
  for i = 1 to 100 do
    Heap.push h (float_of_int i) i
  done;
  let cap = Heap.capacity h in
  Alcotest.(check bool) "grew past initial" true (cap >= 100);
  Heap.clear h;
  Alcotest.(check int) "capacity survives clear" cap (Heap.capacity h);
  (* Refill and drain: contents behave as if freshly built. *)
  for i = 100 downto 1 do
    Heap.push h (float_of_int i) i
  done;
  Alcotest.(check int) "no regrowth needed" cap (Heap.capacity h);
  let rec drain last n =
    match Heap.pop h with
    | None -> n
    | Some (p, _) ->
      Alcotest.(check bool) "nondecreasing" true (p >= last);
      drain p (n + 1)
  in
  Alcotest.(check int) "all elements back" 100 (drain neg_infinity 0)

let test_interleaved () =
  let h = Heap.create () in
  Heap.push h 5. 5;
  Heap.push h 1. 1;
  Alcotest.(check bool) "pop 1" true (Heap.pop h = Some (1., 1));
  Heap.push h 3. 3;
  Heap.push h 0.5 0;
  Alcotest.(check bool) "pop 0" true (Heap.pop h = Some (0.5, 0));
  Alcotest.(check bool) "pop 3" true (Heap.pop h = Some (3., 3));
  Alcotest.(check bool) "pop 5" true (Heap.pop h = Some (5., 5));
  Alcotest.(check bool) "now empty" true (Heap.pop h = None)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in nondecreasing priority order" ~count:300
    QCheck.(list_of_size Gen.(int_range 0 200) (float_range (-1e6) 1e6))
    (fun prios ->
      let h = Heap.create () in
      List.iteri (fun i p -> Heap.push h p i) prios;
      let rec drain last =
        match Heap.pop h with
        | None -> true
        | Some (p, _) -> p >= last && drain p
      in
      drain neg_infinity)

let prop_heap_preserves_all =
  QCheck.Test.make ~name:"heap returns every pushed element" ~count:300
    QCheck.(list_of_size Gen.(int_range 0 100) (float_range 0. 100.))
    (fun prios ->
      let h = Heap.create () in
      List.iteri (fun i p -> Heap.push h p i) prios;
      let rec drain acc =
        match Heap.pop h with None -> acc | Some (_, v) -> drain (v :: acc)
      in
      let out = List.sort compare (drain []) in
      out = List.init (List.length prios) Fun.id)

let test_min_prio_and_pop_exn () =
  let h = Heap.create () in
  Alcotest.(check (float 0.)) "min_prio of empty is infinity" Float.infinity
    (Heap.min_prio h);
  Alcotest.check_raises "pop_exn on empty raises"
    (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Heap.pop_exn h));
  Heap.push h 2. "b";
  Heap.push h 1. "a";
  Alcotest.(check (float 0.)) "min_prio sees the minimum" 1. (Heap.min_prio h);
  Alcotest.(check string) "pop_exn returns the value alone" "a" (Heap.pop_exn h);
  Alcotest.(check (float 0.)) "min_prio advances" 2. (Heap.min_prio h);
  Alcotest.(check string) "pop_exn drains in order" "b" (Heap.pop_exn h);
  Alcotest.(check (float 0.)) "empty again" Float.infinity (Heap.min_prio h)

let prop_pop_exn_matches_pop =
  QCheck.Test.make ~name:"min_prio/pop_exn agree with pop" ~count:300
    QCheck.(list_of_size Gen.(int_range 0 100) (float_range (-1e6) 1e6))
    (fun prios ->
      let a = Heap.create () and b = Heap.create () in
      List.iteri
        (fun i p ->
          Heap.push a p i;
          Heap.push b p i)
        prios;
      let rec drain () =
        match Heap.pop a with
        | None -> Heap.min_prio b = Float.infinity
        | Some (p, v) ->
          Heap.min_prio b = p && Heap.pop_exn b = v && drain ()
      in
      drain ())

let tests =
  [
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "min_prio and pop_exn" `Quick test_min_prio_and_pop_exn;
    Alcotest.test_case "FIFO ties" `Quick test_fifo_ties;
    Alcotest.test_case "peek" `Quick test_peek;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "clear keeps capacity" `Quick test_clear_keeps_capacity;
    Alcotest.test_case "interleaved push/pop" `Quick test_interleaved;
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    QCheck_alcotest.to_alcotest prop_heap_preserves_all;
    QCheck_alcotest.to_alcotest prop_pop_exn_matches_pop;
  ]
