open Remy_sim

let test_acquire_reinitialises () =
  let p = Packet.Pool.create () in
  let a =
    Packet.Pool.acquire p ~flow:1 ~seq:2 ~conn:3 ~now:4.0 ~retx:true
      ~ecn_capable:true ()
  in
  (* Dirty every field a simulation can touch, then recycle. *)
  a.Packet.ecn_marked <- true;
  a.Packet.size <- 99;
  a.Packet.xcp <-
    Some { Packet.xcp_cwnd = 1.; xcp_rtt = 0.1; xcp_feedback = 2. };
  Packet.Pool.release p a;
  let b = Packet.Pool.acquire p ~flow:9 ~seq:8 ~conn:7 ~now:6.5 () in
  Alcotest.(check bool) "same record recycled" true (a == b);
  let fresh = Packet.make ~flow:9 ~seq:8 ~conn:7 ~now:6.5 () in
  Alcotest.(check int) "flow" fresh.Packet.flow b.Packet.flow;
  Alcotest.(check int) "seq" fresh.Packet.seq b.Packet.seq;
  Alcotest.(check int) "conn" fresh.Packet.conn b.Packet.conn;
  Alcotest.(check int) "size" fresh.Packet.size b.Packet.size;
  Alcotest.(check (float 0.)) "sent_at" fresh.Packet.sent_at b.Packet.sent_at;
  Alcotest.(check bool) "retx cleared" fresh.Packet.retx b.Packet.retx;
  Alcotest.(check bool) "ecn_capable cleared" fresh.Packet.ecn_capable
    b.Packet.ecn_capable;
  Alcotest.(check bool) "ecn_marked cleared" fresh.Packet.ecn_marked
    b.Packet.ecn_marked;
  Alcotest.(check bool) "xcp cleared" true (b.Packet.xcp = None)

let test_hit_miss_accounting () =
  let p = Packet.Pool.create () in
  let a = Packet.Pool.acquire p ~flow:0 ~seq:0 ~conn:0 ~now:0. () in
  let b = Packet.Pool.acquire p ~flow:0 ~seq:1 ~conn:0 ~now:0. () in
  Alcotest.(check int) "cold pool misses" 2 (Packet.Pool.misses p);
  Alcotest.(check int) "no hits yet" 0 (Packet.Pool.hits p);
  Packet.Pool.release p a;
  Packet.Pool.release p b;
  ignore (Packet.Pool.acquire p ~flow:0 ~seq:2 ~conn:0 ~now:0. ());
  ignore (Packet.Pool.acquire p ~flow:0 ~seq:3 ~conn:0 ~now:0. ());
  Alcotest.(check int) "recycles are hits" 2 (Packet.Pool.hits p);
  Alcotest.(check int) "misses unchanged" 2 (Packet.Pool.misses p)

let test_lost_records_replenish () =
  (* Records the owner loses (dropped packets) are never released; the
     pool must keep serving fresh ones via misses. *)
  let p = Packet.Pool.create () in
  for seq = 0 to 99 do
    ignore (Packet.Pool.acquire p ~flow:0 ~seq ~conn:0 ~now:0. ())
  done;
  Alcotest.(check int) "every acquire a miss" 100 (Packet.Pool.misses p)

let test_ack_pool_recycles () =
  let p = Packet.Pool.create () in
  let a = Packet.Pool.acquire_ack p in
  a.Packet.ack_flow <- 5;
  a.Packet.cum_ack <- 17;
  Packet.Pool.release_ack p a;
  let b = Packet.Pool.acquire_ack p in
  Alcotest.(check bool) "same ack record recycled" true (a == b)

let test_pool_grows_past_initial_capacity () =
  let p = Packet.Pool.create () in
  let pkts =
    List.init 500 (fun seq -> Packet.Pool.acquire p ~flow:0 ~seq ~conn:0 ~now:0. ())
  in
  List.iter (Packet.Pool.release p) pkts;
  (* All 500 must come back from the free list. *)
  for seq = 0 to 499 do
    ignore (Packet.Pool.acquire p ~flow:0 ~seq ~conn:0 ~now:0. ())
  done;
  Alcotest.(check int) "full recycling" 500 (Packet.Pool.hits p)

let tests =
  [
    Alcotest.test_case "acquire fully re-initialises" `Quick
      test_acquire_reinitialises;
    Alcotest.test_case "hit/miss accounting" `Quick test_hit_miss_accounting;
    Alcotest.test_case "lost records replenish via misses" `Quick
      test_lost_records_replenish;
    Alcotest.test_case "ack records recycle" `Quick test_ack_pool_recycles;
    Alcotest.test_case "free list grows past initial capacity" `Quick
      test_pool_grows_past_initial_capacity;
  ]
