open Remy_cc
open Remy_sim
open Remy_util

(* Direct sender<->receiver harness with injectable loss: [should_drop]
   sees every transmission (packet + transmission count for that seq)
   and decides its fate.  One-way delay is [delay] in each direction. *)
type harness = {
  engine : Engine.t;
  sender : Tcp_sender.t;
  metrics : Metrics.t;
  mutable transmissions : Packet.t list;  (* newest first *)
}

let make_harness ?(delay = 0.05) ?(min_rto = 0.2) ?(should_drop = fun _ _ -> false)
    ?(workload = Workload.saturating) ?(start = `Immediate) cc =
  let engine = Engine.create () in
  let metrics = Metrics.create ~n_flows:1 in
  let rng = Prng.create 42 in
  let tx_counts : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let sender_cell = ref None in
  let receiver =
    Receiver.create ~flow:0 ~metrics
      ~queueing_delay_of:(fun pkt ~now -> now -. pkt.Packet.sent_at -. delay)
      ~ack_sink:(fun ack ->
        Engine.schedule_in engine delay (fun () ->
            Tcp_sender.handle_ack (Option.get !sender_cell) ack))
      ()
  in
  let h = ref None in
  let transmit pkt =
    (match !h with Some h -> h.transmissions <- pkt :: h.transmissions | None -> ());
    let key = (pkt.Packet.conn, pkt.Packet.seq) in
    let count = (try Hashtbl.find tx_counts key with Not_found -> 0) + 1 in
    Hashtbl.replace tx_counts key count;
    if not (should_drop pkt count) then
      Engine.schedule_in engine delay (fun () ->
          Receiver.receive receiver ~now:(Engine.now engine) pkt)
  in
  let sender =
    Tcp_sender.create engine
      { Tcp_sender.flow = 0; cc; rtt = 2. *. delay; workload; start; min_rto }
      ~transmit ~metrics ~rng
  in
  sender_cell := Some sender;
  let harness = { engine; sender; metrics; transmissions = [] } in
  h := Some harness;
  harness

let fixed_transfer n =
  {
    Workload.off_time = Remy_util.Dist.Constant infinity;
    on_spec = Workload.By_bytes (Remy_util.Dist.Constant (float_of_int (n * Packet.default_size)));
  }

let test_lossless_transfer_completes () =
  let h = make_harness ~workload:(fixed_transfer 50) (Newreno.make ()) in
  Tcp_sender.start h.sender;
  Engine.run h.engine ~until:30.;
  Alcotest.(check int) "all 50 segments acked" 50 (Tcp_sender.cum_acked h.sender);
  Alcotest.(check bool) "flow completed (off)" false (Tcp_sender.is_on h.sender);
  Alcotest.(check int) "no retransmissions" 0 (Tcp_sender.retransmissions h.sender);
  let s = Metrics.summary h.metrics 0 in
  Alcotest.(check int) "receiver got 50" 50 s.Metrics.packets

let test_fast_retransmit_recovers () =
  (* Drop the first transmission of segment 10 only. *)
  let should_drop pkt count = pkt.Packet.seq = 10 && count = 1 in
  let h = make_harness ~should_drop ~workload:(fixed_transfer 60) (Newreno.make ()) in
  Tcp_sender.start h.sender;
  Engine.run h.engine ~until:30.;
  Alcotest.(check int) "transfer completes" 60 (Tcp_sender.cum_acked h.sender);
  Alcotest.(check bool) "retransmitted" true (Tcp_sender.retransmissions h.sender >= 1);
  Alcotest.(check int) "no timeout needed" 0 (Tcp_sender.timeouts h.sender)

let test_rto_recovers_tail_loss () =
  (* Drop the first transmission of the last segment: no dupACKs can
     arrive, so only the RTO can recover it. *)
  let should_drop pkt count = pkt.Packet.seq = 19 && count = 1 in
  let h = make_harness ~should_drop ~workload:(fixed_transfer 20) (Newreno.make ()) in
  Tcp_sender.start h.sender;
  Engine.run h.engine ~until:30.;
  Alcotest.(check int) "transfer completes" 20 (Tcp_sender.cum_acked h.sender);
  Alcotest.(check bool) "timeout fired" true (Tcp_sender.timeouts h.sender >= 1)

let test_burst_loss_recovers () =
  (* Drop a 12-segment burst once: triggers recovery and possibly RTO
     go-back-N; the transfer must still complete. *)
  let should_drop pkt count = pkt.Packet.seq >= 20 && pkt.Packet.seq < 32 && count = 1 in
  let h = make_harness ~should_drop ~workload:(fixed_transfer 80) (Newreno.make ()) in
  Tcp_sender.start h.sender;
  Engine.run h.engine ~until:60.;
  Alcotest.(check int) "transfer completes" 80 (Tcp_sender.cum_acked h.sender)

let test_karn_no_rtt_from_retx () =
  (* All RTT samples must come from first transmissions: make the
     retransmitted copy arrive with huge delay and check srtt stays
     reasonable. *)
  let should_drop pkt count = pkt.Packet.seq = 5 && count = 1 in
  let h = make_harness ~should_drop ~workload:(fixed_transfer 40) (Newreno.make ()) in
  Tcp_sender.start h.sender;
  Engine.run h.engine ~until:30.;
  match Tcp_sender.srtt h.sender with
  | Some srtt -> Alcotest.(check bool) "srtt near 100 ms" true (srtt < 0.3)
  | None -> Alcotest.fail "no srtt"

let test_window_limits_flight () =
  (* A fixed window of 4: never more than 4 outstanding. *)
  let fixed_cc =
    {
      Cc.name = "fixed";
      ecn_capable = false;
      reset = (fun ~now:_ -> ());
      on_ack = (fun _ -> ());
      on_loss = (fun ~now:_ -> ());
      on_timeout = (fun ~now:_ -> ());
      window = (fun () -> 4.);
      intersend = (fun () -> 0.);
      stamp = Cc.no_stamp;
    }
  in
  let h = make_harness ~workload:(fixed_transfer 40) fixed_cc in
  let max_flight = ref 0 in
  Tcp_sender.start h.sender;
  (* Sample in-flight after every event via a polling tick. *)
  let rec probe () =
    max_flight := max !max_flight (Tcp_sender.in_flight h.sender);
    if Engine.now h.engine < 20. then Engine.schedule_in h.engine 0.001 probe
  in
  probe ();
  Engine.run h.engine ~until:20.;
  Alcotest.(check bool) "window respected" true (!max_flight <= 4);
  Alcotest.(check int) "transfer completes" 40 (Tcp_sender.cum_acked h.sender)

let test_pacing_spacing () =
  (* intersend of 30 ms: consecutive sends at least that far apart. *)
  let paced_cc =
    {
      Cc.name = "paced";
      ecn_capable = false;
      reset = (fun ~now:_ -> ());
      on_ack = (fun _ -> ());
      on_loss = (fun ~now:_ -> ());
      on_timeout = (fun ~now:_ -> ());
      window = (fun () -> 100.);
      intersend = (fun () -> 0.030);
      stamp = Cc.no_stamp;
    }
  in
  let h = make_harness ~workload:(fixed_transfer 20) paced_cc in
  Tcp_sender.start h.sender;
  Engine.run h.engine ~until:10.;
  let sends = List.rev_map (fun p -> p.Packet.sent_at) h.transmissions in
  let rec check = function
    | a :: (b :: _ as tl) ->
      if b -. a < 0.030 -. 1e-9 then Alcotest.failf "pacing violated: %f" (b -. a);
      check tl
    | _ -> ()
  in
  check sends;
  Alcotest.(check int) "transfer completes" 20 (Tcp_sender.cum_acked h.sender)

let test_on_off_connections () =
  (* Two on-periods: fresh connection counters and sequence space. *)
  let w =
    {
      Workload.off_time = Remy_util.Dist.Constant 0.5;
      on_spec = Workload.By_bytes (Remy_util.Dist.Constant (float_of_int (5 * Packet.default_size)));
    }
  in
  let h = make_harness ~workload:w (Newreno.make ()) in
  Tcp_sender.start h.sender;
  Engine.run h.engine ~until:5.;
  Alcotest.(check bool) "several connections" true
    (Tcp_sender.connections_started h.sender >= 3);
  let conns =
    List.sort_uniq compare (List.map (fun p -> p.Packet.conn) h.transmissions)
  in
  Alcotest.(check bool) "multiple conns on the wire" true (List.length conns >= 3);
  (* Sequence numbers restart per connection. *)
  List.iter
    (fun c ->
      let seqs =
        List.filter_map
          (fun p -> if p.Packet.conn = c && not p.Packet.retx then Some p.Packet.seq else None)
          h.transmissions
      in
      if seqs <> [] then
        Alcotest.(check int) "seqs start at 0" 0 (List.fold_left min max_int seqs))
    conns

let test_by_time_flow_stops () =
  let w =
    {
      Workload.off_time = Remy_util.Dist.Constant infinity;
      on_spec = Workload.By_time (Remy_util.Dist.Constant 1.0);
    }
  in
  let h = make_harness ~workload:w (Newreno.make ()) in
  Tcp_sender.start h.sender;
  Engine.run h.engine ~until:5.;
  Alcotest.(check bool) "off after deadline" false (Tcp_sender.is_on h.sender);
  let last_send =
    match h.transmissions with [] -> 0. | p :: _ -> p.Packet.sent_at
  in
  Alcotest.(check bool) "no sends after deadline" true (last_send <= 1.0 +. 1e-9)

let test_start_immediate_vs_off_draw () =
  let h = make_harness ~start:`Immediate ~workload:(fixed_transfer 1) (Newreno.make ()) in
  Tcp_sender.start h.sender;
  Alcotest.(check bool) "on at t=0" true (Tcp_sender.is_on h.sender)

let test_zero_window_cc_still_progresses () =
  (* A congestion controller that demands a zero (or negative) window
     must not deadlock the connection: the sender floors the effective
     window at one segment. *)
  let zero_cc =
    {
      Cc.name = "zero";
      ecn_capable = false;
      reset = (fun ~now:_ -> ());
      on_ack = (fun _ -> ());
      on_loss = (fun ~now:_ -> ());
      on_timeout = (fun ~now:_ -> ());
      window = (fun () -> 0.);
      intersend = (fun () -> 0.);
      stamp = Cc.no_stamp;
    }
  in
  let h = make_harness ~workload:(fixed_transfer 10) zero_cc in
  Tcp_sender.start h.sender;
  Engine.run h.engine ~until:30.;
  Alcotest.(check int) "transfer still completes" 10 (Tcp_sender.cum_acked h.sender)

let test_pacing_only_rate () =
  (* A huge window with 100 ms pacing: throughput is exactly pace-bound
     (10 segments per second). *)
  let paced =
    {
      Cc.name = "pace";
      ecn_capable = false;
      reset = (fun ~now:_ -> ());
      on_ack = (fun _ -> ());
      on_loss = (fun ~now:_ -> ());
      on_timeout = (fun ~now:_ -> ());
      window = (fun () -> 1e6);
      intersend = (fun () -> 0.1);
      stamp = Cc.no_stamp;
    }
  in
  let h = make_harness ~workload:(fixed_transfer 1000) paced in
  Tcp_sender.start h.sender;
  Engine.run h.engine ~until:10.;
  let sent = Tcp_sender.next_seq h.sender in
  (* 10 s at 10 pkts/s, +-1 for boundary effects. *)
  Alcotest.(check bool) "pace-bound rate" true (sent >= 99 && sent <= 102)

let test_stale_conn_ack_ignored () =
  let h = make_harness ~workload:(fixed_transfer 5) (Newreno.make ()) in
  Tcp_sender.start h.sender;
  Engine.run h.engine ~until:10.;
  let final = Tcp_sender.cum_acked h.sender in
  (* Forge an ACK from a previous connection: must be a no-op. *)
  Tcp_sender.handle_ack h.sender
    {
      Packet.ack_flow = 0;
      ack_conn = 999;
      cum_ack = 12345;
      acked_seq = 0;
      acked_sent_at = 0.;
      acked_retx = false;
      ecn_echo = false;
      ack_xcp_feedback = None;
      received_at = 0.;
    };
  Alcotest.(check int) "ignored" final (Tcp_sender.cum_acked h.sender)

let test_delivery_conservation_under_loss () =
  (* Everything cumulatively acked was delivered exactly once, even with
     heavy random loss. *)
  let rng = Prng.create 99 in
  let should_drop _ _ = Prng.float rng 1.0 < 0.2 in
  let h = make_harness ~should_drop ~workload:(fixed_transfer 60) (Newreno.make ()) in
  Tcp_sender.start h.sender;
  Engine.run h.engine ~until:120.;
  let s = Metrics.summary h.metrics 0 in
  Alcotest.(check int) "acked = transfer size" 60 (Tcp_sender.cum_acked h.sender);
  Alcotest.(check int) "unique deliveries = transfer size" 60 s.Metrics.packets

let test_rto_clamped_during_blackout () =
  (* Regression for unbounded exponential backoff: with every packet
     blackholed for minutes, the timer must saturate at [max_rto]
     instead of doubling past the simulation horizon, and the first ACK
     after recovery must reset the backoff so the sender probes at
     normal cadence again. *)
  let blackhole = ref true in
  let h =
    make_harness
      ~should_drop:(fun _ _ -> !blackhole)
      ~workload:(fixed_transfer 20) (Newreno.make ())
  in
  Tcp_sender.start h.sender;
  Engine.run h.engine ~until:600.;
  Alcotest.(check bool) "backoff saturates" true
    (Tcp_sender.rto_backoff h.sender <= 64.);
  Alcotest.(check bool) "timer clamped at max_rto" true
    (Tcp_sender.current_rto h.sender <= Tcp_sender.max_rto +. 1e-9);
  Alcotest.(check bool) "many timeouts fired (not wedged)" true
    (Tcp_sender.timeouts h.sender >= 8);
  blackhole := false;
  Engine.run h.engine ~until:700.;
  Alcotest.(check int) "transfer completes after recovery" 20
    (Tcp_sender.cum_acked h.sender);
  Alcotest.(check (float 0.)) "backoff reset by new ack" 1.
    (Tcp_sender.rto_backoff h.sender)

let tests =
  [
    Alcotest.test_case "lossless transfer completes" `Quick test_lossless_transfer_completes;
    Alcotest.test_case "RTO clamped across blackout" `Quick test_rto_clamped_during_blackout;
    Alcotest.test_case "fast retransmit recovers" `Quick test_fast_retransmit_recovers;
    Alcotest.test_case "RTO recovers tail loss" `Quick test_rto_recovers_tail_loss;
    Alcotest.test_case "burst loss recovers" `Quick test_burst_loss_recovers;
    Alcotest.test_case "Karn filters retransmit RTTs" `Quick test_karn_no_rtt_from_retx;
    Alcotest.test_case "window limits flight" `Quick test_window_limits_flight;
    Alcotest.test_case "pacing spacing" `Quick test_pacing_spacing;
    Alcotest.test_case "on/off starts fresh connections" `Quick test_on_off_connections;
    Alcotest.test_case "by-time flow stops at deadline" `Quick test_by_time_flow_stops;
    Alcotest.test_case "immediate start" `Quick test_start_immediate_vs_off_draw;
    Alcotest.test_case "zero-window cc progresses" `Quick test_zero_window_cc_still_progresses;
    Alcotest.test_case "pacing-only rate" `Quick test_pacing_only_rate;
    Alcotest.test_case "stale connection ack ignored" `Quick test_stale_conn_ack_ignored;
    Alcotest.test_case "delivery conservation under loss" `Quick test_delivery_conservation_under_loss;
  ]
