(* The multi-bottleneck topology acceptance tests.  The load-bearing
   one is the reduction property: a single-link topology with routes
   [|0|] is the dumbbell, and the two runners must agree bit for bit —
   flow summaries, drops, delivered, utilization — across qdiscs,
   congestion controls, and on/off workloads.  That transitively
   validates the hop-by-hop runner against everything test_dumbbell
   already proves.  The rest: canonical builders produce sane traffic,
   runs are deterministic (including 4096-flow incast with randomized
   on/off arrivals), and malformed routes are rejected. *)

open Remy_cc
open Remy_sim

let check_flow name i (a : Metrics.flow_summary) (b : Metrics.flow_summary) =
  let lbl s = Printf.sprintf "%s: flow %d %s" name i s in
  Alcotest.(check (float 0.)) (lbl "throughput") a.Metrics.throughput_mbps
    b.Metrics.throughput_mbps;
  Alcotest.(check (float 0.))
    (lbl "queueing delay")
    a.Metrics.mean_queueing_delay_ms b.Metrics.mean_queueing_delay_ms;
  Alcotest.(check int) (lbl "bytes") a.Metrics.bytes b.Metrics.bytes;
  Alcotest.(check int) (lbl "packets") a.Metrics.packets b.Metrics.packets;
  Alcotest.(check (float 0.)) (lbl "on_time") a.Metrics.on_time b.Metrics.on_time

(* --- reduction to the dumbbell -------------------------------------- *)

let check_dumbbell_equiv name ~qdisc ~cc_of ~n ~workload ~start ~duration ~seed =
  let rtt = 0.1 and rate = 15. and min_rto = 0.2 in
  let d_cfg =
    {
      Dumbbell.service = Dumbbell.Rate_mbps rate;
      qdisc;
      flows =
        Array.init n (fun i -> { Dumbbell.cc = cc_of i; rtt; workload; start });
      duration;
      seed;
      min_rto;
    }
  in
  let t_cfg =
    {
      Topology.links = [| { Topology.rate_mbps = rate; delay_s = rtt /. 2.; qdisc } |];
      flows =
        Array.init n (fun i ->
            { Topology.cc = cc_of i; route = [| 0 |]; workload; start });
      duration;
      seed;
      min_rto;
    }
  in
  let dr = Dumbbell.run d_cfg and tr = Topology.run t_cfg in
  Array.iteri
    (fun i f -> check_flow name i f tr.Topology.flows.(i))
    dr.Dumbbell.flows;
  Alcotest.(check int) (name ^ ": drops") dr.Dumbbell.drops tr.Topology.drops;
  Alcotest.(check int) (name ^ ": delivered") dr.Dumbbell.delivered
    tr.Topology.delivered;
  Alcotest.(check (float 0.))
    (name ^ ": utilization")
    dr.Dumbbell.mean_utilization tr.Topology.bottleneck_utilization;
  (* Sanity: the run did something. *)
  Alcotest.(check bool) (name ^ ": traffic flowed") true (tr.Topology.received > 0)

let test_reduces_to_dumbbell_newreno () =
  check_dumbbell_equiv "newreno saturating" ~qdisc:(Dumbbell.Droptail 1000)
    ~cc_of:(fun _ -> Newreno.factory ())
    ~n:2 ~workload:Workload.saturating ~start:`Immediate ~duration:8. ~seed:9

let test_reduces_to_dumbbell_onoff_lossy () =
  (* Stochastic loss plus off-draw starts exercises timeouts, recovery,
     and the workload RNG split order. *)
  check_dumbbell_equiv "lossy on/off"
    ~qdisc:(Dumbbell.With_loss (0.03, Dumbbell.Droptail 500))
    ~cc_of:(fun _ -> Newreno.factory ())
    ~n:3
    ~workload:(Workload.by_bytes ~mean_bytes:5e4 ~mean_off:0.3)
    ~start:`Off_draw ~duration:12. ~seed:4

let test_reduces_to_dumbbell_remycc () =
  let tree = Remy.Rule_tree.create () in
  check_dumbbell_equiv "remycc" ~qdisc:(Dumbbell.Droptail 1000)
    ~cc_of:(fun _ -> Remy.Remycc.factory tree)
    ~n:2
    ~workload:(Workload.by_bytes ~mean_bytes:1e5 ~mean_off:0.2)
    ~start:`Off_draw ~duration:8. ~seed:7

(* --- canonical builders --------------------------------------------- *)

let test_parking_lot_shares_chain () =
  (* Long flows cross every hop, so each hop carries strictly more than
     the long flows alone; all flows make progress. *)
  let cfg =
    Topology.parking_lot ~hops:3 ~n:6 ~cc:(Newreno.factory ())
      ~workload:Workload.saturating ~start:`Immediate ~duration:10. ~seed:3 ()
  in
  Alcotest.(check int) "three links" 3 (Array.length cfg.Topology.links);
  let r = Topology.run cfg in
  Array.iteri
    (fun i f ->
      Alcotest.(check bool)
        (Printf.sprintf "flow %d got throughput" i)
        true
        (f.Metrics.throughput_mbps > 0.05))
    r.Topology.flows;
  Alcotest.(check bool) "bottleneck used" true (r.Topology.bottleneck_utilization > 0.5)

let test_fat_tree_pod_smoke () =
  let cfg =
    Topology.fat_tree_pod ~edges:4 ~n:8 ~cc:(Newreno.factory ())
      ~workload:Workload.saturating ~start:`Immediate ~duration:2. ~seed:5 ()
  in
  Alcotest.(check int) "edges + agg + core" 6 (Array.length cfg.Topology.links);
  (* Every flow's route is edge -> aggregation -> core. *)
  Array.iter
    (fun (f : Topology.flow_spec) ->
      Alcotest.(check int) "three hops" 3 (Array.length f.Topology.route))
    cfg.Topology.flows;
  let r = Topology.run cfg in
  Alcotest.(check bool) "delivered traffic" true (r.Topology.received > 0);
  Array.iter
    (fun (f : Metrics.flow_summary) ->
      Alcotest.(check bool) "finite throughput" true
        (Float.is_finite f.Metrics.throughput_mbps))
    r.Topology.flows

let test_incast_bursts () =
  let cfg =
    Topology.incast ~n:16 ~cc:(Newreno.factory ()) ~duration:1. ~seed:2 ()
  in
  let r = Topology.run cfg in
  (* Synchronized bursts: every sender delivers something. *)
  Array.iteri
    (fun i f ->
      Alcotest.(check bool) (Printf.sprintf "sender %d delivered" i) true
        (f.Metrics.packets > 0))
    r.Topology.flows

let test_incast_access_links () =
  let cfg =
    Topology.incast ~access_mbps:100. ~n:4 ~cc:(Newreno.factory ())
      ~duration:1. ~seed:2 ()
  in
  Alcotest.(check int) "bottleneck + one access link per sender" 5
    (Array.length cfg.Topology.links);
  let r = Topology.run cfg in
  Alcotest.(check bool) "delivered traffic" true (r.Topology.received > 0)

(* --- determinism ----------------------------------------------------- *)

let summaries_identical name (a : Topology.result) (b : Topology.result) =
  Array.iteri (fun i f -> check_flow name i f b.Topology.flows.(i)) a.Topology.flows;
  Alcotest.(check int) (name ^ ": drops") a.Topology.drops b.Topology.drops;
  Alcotest.(check int) (name ^ ": received") a.Topology.received b.Topology.received

let test_parking_lot_deterministic () =
  let cfg () =
    Topology.parking_lot ~hops:3 ~n:5 ~cc:(Newreno.factory ())
      ~workload:(Workload.by_bytes ~mean_bytes:5e4 ~mean_off:0.2)
      ~start:`Off_draw ~duration:6. ~seed:13 ()
  in
  summaries_identical "parking-lot" (Topology.run (cfg ())) (Topology.run (cfg ()))

let test_incast_4096_onoff_deterministic () =
  (* The scale target: 4096 flows with randomized on/off arrivals must
     replay bit-identically from the seed. *)
  let cfg () =
    Topology.incast ~n:4096 ~cc:(Newreno.factory ())
      ~workload:(Workload.by_bytes ~mean_bytes:2e4 ~mean_off:0.1)
      ~start:`Off_draw ~duration:0.3 ~seed:17 ()
  in
  let r1 = Topology.run (cfg ()) and r2 = Topology.run (cfg ()) in
  Alcotest.(check int) "4096 flows" 4096 (Array.length r1.Topology.flows);
  Alcotest.(check bool) "some arrivals happened" true (r1.Topology.received > 0);
  summaries_identical "incast-4096" r1 r2

(* --- registry and validation ----------------------------------------- *)

let test_registry () =
  List.iter
    (fun name ->
      match Topology.builder_of_name name with
      | Some _ -> ()
      | None -> Alcotest.failf "registered topology %s not found" name)
    [ "parking-lot"; "fat-tree-pod"; "incast" ];
  Alcotest.(check bool) "unknown name rejected" true
    (Topology.builder_of_name "moebius-strip" = None);
  Alcotest.(check int) "names lists the registry" (List.length Topology.builders)
    (List.length Topology.names);
  (* Every registered builder yields a runnable config. *)
  List.iter
    (fun (name, (builder : Topology.builder)) ->
      let cfg =
        builder ~n:3 ~cc:(Newreno.factory ()) ~duration:0.5 ~seed:1 ()
      in
      let r = Topology.run cfg in
      Alcotest.(check int) (name ^ " flow count") 3 (Array.length r.Topology.flows))
    Topology.builders

let invalid cfg =
  match Topology.run cfg with
  | _ -> false
  | exception Invalid_argument _ -> true

let test_validation () =
  let link = { Topology.rate_mbps = 10.; delay_s = 0.01; qdisc = Dumbbell.Droptail 10 } in
  let flow route =
    {
      Topology.cc = (Newreno.factory ());
      route;
      workload = Workload.saturating;
      start = `Immediate;
    }
  in
  let cfg flows =
    { Topology.links = [| link |]; flows; duration = 1.; seed = 1; min_rto = 0.2 }
  in
  Alcotest.(check bool) "empty route rejected" true (invalid (cfg [| flow [||] |]));
  Alcotest.(check bool) "unknown link rejected" true (invalid (cfg [| flow [| 1 |] |]));
  Alcotest.(check bool) "looping route rejected" true
    (invalid (cfg [| flow [| 0; 0 |] |]));
  Alcotest.(check bool) "no flows rejected" true (invalid (cfg [||]))

let tests =
  [
    Alcotest.test_case "single link reduces to dumbbell (newreno)" `Slow
      test_reduces_to_dumbbell_newreno;
    Alcotest.test_case "single link reduces to dumbbell (lossy on/off)" `Slow
      test_reduces_to_dumbbell_onoff_lossy;
    Alcotest.test_case "single link reduces to dumbbell (remycc)" `Slow
      test_reduces_to_dumbbell_remycc;
    Alcotest.test_case "parking lot shares the chain" `Slow
      test_parking_lot_shares_chain;
    Alcotest.test_case "fat-tree pod smoke" `Quick test_fat_tree_pod_smoke;
    Alcotest.test_case "incast bursts deliver" `Quick test_incast_bursts;
    Alcotest.test_case "incast access links" `Quick test_incast_access_links;
    Alcotest.test_case "parking lot deterministic" `Slow
      test_parking_lot_deterministic;
    Alcotest.test_case "4096-flow incast on/off deterministic" `Slow
      test_incast_4096_onoff_deterministic;
    Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "route validation" `Quick test_validation;
  ]
