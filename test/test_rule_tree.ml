open Remy
open Remy_util

let mem a s r = Memory.make ~ack_ewma:a ~send_ewma:s ~rtt_ratio:r

let test_singleton () =
  let t = Rule_tree.create () in
  Alcotest.(check int) "one rule" 1 (Rule_tree.num_rules t);
  Alcotest.(check int) "lookup anywhere" 0 (Rule_tree.lookup t (mem 0. 0. 0.));
  Alcotest.(check int) "lookup far corner" 0 (Rule_tree.lookup t (mem 16000. 16000. 16000.));
  Alcotest.(check bool) "default action" true
    (Action.equal (Rule_tree.action t 0) Action.default)

let test_subdivide_partitions () =
  let t = Rule_tree.create () in
  let children = Rule_tree.subdivide t 0 ~at:(mem 100. 200. 2.) in
  Alcotest.(check int) "eight children" 8 (List.length children);
  Alcotest.(check int) "eight live rules" 8 (Rule_tree.num_rules t);
  (* Points on each side of every plane land in distinct octants. *)
  let id_low = Rule_tree.lookup t (mem 50. 100. 1.) in
  let id_high = Rule_tree.lookup t (mem 200. 300. 3.) in
  Alcotest.(check bool) "octants differ" true (id_low <> id_high);
  (* Children inherit the parent action. *)
  List.iter
    (fun id ->
      Alcotest.(check bool) "inherits action" true
        (Action.equal (Rule_tree.action t id) Action.default))
    children

let test_subdivide_boundary_point_is_high_side () =
  let t = Rule_tree.create () in
  ignore (Rule_tree.subdivide t 0 ~at:(mem 100. 100. 1.));
  let at_split = Rule_tree.lookup t (mem 100. 100. 1.) in
  let above = Rule_tree.lookup t (mem 101. 101. 1.01) in
  Alcotest.(check int) "split point belongs to the high child" above at_split

let test_subdivide_degenerate_point_uses_midpoint () =
  let t = Rule_tree.create () in
  (* A split at the very corner would create empty children; the tree
     must fall back to the box midpoint. *)
  ignore (Rule_tree.subdivide t 0 ~at:(mem 0. 0. 0.));
  let low = Rule_tree.lookup t (mem 1. 1. 1.) in
  let high = Rule_tree.lookup t (mem 10000. 10000. 10000.) in
  Alcotest.(check bool) "still partitions" true (low <> high)

let test_dead_parent_not_live () =
  let t = Rule_tree.create () in
  ignore (Rule_tree.subdivide t 0 ~at:(mem 100. 100. 2.));
  Alcotest.(check bool) "parent retired" false (List.mem 0 (Rule_tree.live_ids t));
  Alcotest.check_raises "resubdividing parent rejected"
    (Invalid_argument "Rule_tree.subdivide: 0 not live") (fun () ->
      ignore (Rule_tree.subdivide t 0 ~at:(mem 50. 50. 1.)))

let test_nested_subdivision () =
  let t = Rule_tree.create () in
  ignore (Rule_tree.subdivide t 0 ~at:(mem 1000. 1000. 4.));
  let id = Rule_tree.lookup t (mem 10. 10. 1.) in
  ignore (Rule_tree.subdivide t id ~at:(mem 10. 10. 1.5));
  Alcotest.(check int) "15 live rules" 15 (Rule_tree.num_rules t);
  Alcotest.(check int) "capacity grows" 17 (Rule_tree.capacity t)

let test_epochs () =
  let t = Rule_tree.create () in
  ignore (Rule_tree.subdivide t 0 ~at:(mem 100. 100. 2.));
  Rule_tree.promote_all t 3;
  List.iter
    (fun id -> Alcotest.(check int) "promoted" 3 (Rule_tree.epoch t id))
    (Rule_tree.live_ids t);
  Rule_tree.set_epoch t (List.hd (Rule_tree.live_ids t)) 4;
  Alcotest.(check int) "individual epoch" 4
    (Rule_tree.epoch t (List.hd (Rule_tree.live_ids t)))

let test_override () =
  let t = Rule_tree.create () in
  let custom = { Action.multiple = 0.5; increment = 2.; intersend_ms = 5. } in
  Alcotest.(check bool) "override substitutes" true
    (Action.equal custom (Rule_tree.action ~override:(0, custom) t 0));
  Alcotest.(check bool) "tree unchanged" true
    (Action.equal Action.default (Rule_tree.action t 0))

let test_box () =
  let t = Rule_tree.create () in
  let b = Rule_tree.box t 0 in
  Alcotest.(check (float 0.)) "lo" 0. (fst b.(0));
  Alcotest.(check (float 0.)) "hi" Memory.max_value (snd b.(2))

let random_tree rng depth =
  let t = Rule_tree.create () in
  let rec go d =
    if d > 0 then begin
      let ids = Rule_tree.live_ids t in
      let id = List.nth ids (Prng.int rng (List.length ids)) in
      let b = Rule_tree.box t id in
      let point =
        Memory.make
          ~ack_ewma:(Prng.uniform rng (fst b.(0)) (snd b.(0)))
          ~send_ewma:(Prng.uniform rng (fst b.(1)) (snd b.(1)))
          ~rtt_ratio:(Prng.uniform rng (fst b.(2)) (snd b.(2)))
      in
      let children = Rule_tree.subdivide t id ~at:point in
      List.iter
        (fun cid ->
          Rule_tree.set_action t cid
            (Action.clamp
               {
                 Action.multiple = Prng.float rng 2.;
                 increment = Prng.uniform rng (-50.) 50.;
                 intersend_ms = Prng.uniform rng 0.01 10.;
               }))
        children;
      go (d - 1)
    end
  in
  go depth;
  t

let test_serialization_roundtrip () =
  let rng = Prng.create 31 in
  let t = random_tree rng 4 in
  let path = Filename.temp_file "rules" ".rules" in
  Rule_tree.save path t;
  (match Rule_tree.load path with
  | Error msg -> Alcotest.fail msg
  | Ok t' ->
    Alcotest.(check int) "same rule count" (Rule_tree.num_rules t) (Rule_tree.num_rules t');
    (* Lookup agreement on many random points. *)
    let probe = Prng.create 77 in
    for _ = 1 to 500 do
      let m =
        Memory.make
          ~ack_ewma:(Prng.float probe Memory.max_value)
          ~send_ewma:(Prng.float probe Memory.max_value)
          ~rtt_ratio:(Prng.float probe Memory.max_value)
      in
      let a = Rule_tree.action t (Rule_tree.lookup t m) in
      let a' = Rule_tree.action t' (Rule_tree.lookup t' m) in
      if not (Action.equal a a') then Alcotest.failf "action mismatch at %s"
        (Format.asprintf "%a" Memory.pp m)
    done);
  Sys.remove path

let test_collapse_agreeing () =
  let t = Rule_tree.create () in
  ignore (Rule_tree.subdivide t 0 ~at:(mem 100. 100. 2.));
  (* Children all still share the default action: one collapse. *)
  Alcotest.(check int) "one split collapsed" 1 (Rule_tree.collapse_agreeing t);
  Alcotest.(check int) "single rule again" 1 (Rule_tree.num_rules t);
  Alcotest.(check bool) "action preserved" true
    (Action.equal Action.default
       (Rule_tree.action t (Rule_tree.lookup t (mem 1. 1. 1.))))

let test_collapse_respects_disagreement () =
  let t = Rule_tree.create () in
  let children = Rule_tree.subdivide t 0 ~at:(mem 100. 100. 2.) in
  Rule_tree.set_action t (List.hd children)
    { Action.multiple = 0.5; increment = 2.; intersend_ms = 1. };
  Alcotest.(check int) "disagreeing split kept" 0 (Rule_tree.collapse_agreeing t);
  Alcotest.(check int) "still eight rules" 8 (Rule_tree.num_rules t)

let test_collapse_cascades () =
  let t = Rule_tree.create () in
  ignore (Rule_tree.subdivide t 0 ~at:(mem 1000. 1000. 4.));
  let id = Rule_tree.lookup t (mem 1. 1. 1.) in
  ignore (Rule_tree.subdivide t id ~at:(mem 10. 10. 1.5));
  (* All 15 leaves share the default action: the inner split collapses,
     then the outer one does too, in a single pass. *)
  Alcotest.(check int) "both splits collapsed" 2 (Rule_tree.collapse_agreeing t);
  Alcotest.(check int) "single rule" 1 (Rule_tree.num_rules t);
  (* The collapsed tree still looks up correctly everywhere. *)
  Alcotest.(check bool) "lookup works" true
    (Rule_tree.lookup t (mem 5000. 5000. 10.) >= 0)

let test_collapse_partial () =
  let t = Rule_tree.create () in
  ignore (Rule_tree.subdivide t 0 ~at:(mem 1000. 1000. 4.));
  let inner_parent = Rule_tree.lookup t (mem 1. 1. 1.) in
  let inner = Rule_tree.subdivide t inner_parent ~at:(mem 10. 10. 1.5) in
  (* Make the outer level disagree so only the inner split collapses. *)
  let outer = Rule_tree.lookup t (mem 5000. 5000. 10.) in
  Rule_tree.set_action t outer
    { Action.multiple = 0.1; increment = 7.; intersend_ms = 3. };
  ignore inner;
  Alcotest.(check int) "inner collapsed only" 1 (Rule_tree.collapse_agreeing t);
  Alcotest.(check int) "eight rules remain" 8 (Rule_tree.num_rules t)

let test_num_rules_tracks_live_ids () =
  (* num_rules is now an O(1) counter; it must agree with the tree walk
     through arbitrary subdivide/collapse histories. *)
  let rng = Prng.create 91 in
  let t = Rule_tree.create () in
  let agree label =
    Alcotest.(check int) label (List.length (Rule_tree.live_ids t))
      (Rule_tree.num_rules t)
  in
  agree "fresh tree";
  for step = 1 to 12 do
    let ids = Rule_tree.live_ids t in
    let id = List.nth ids (Prng.int rng (List.length ids)) in
    ignore
      (Rule_tree.subdivide t id
         ~at:
           (Memory.make ~ack_ewma:(Prng.float rng 1000.)
              ~send_ewma:(Prng.float rng 1000.) ~rtt_ratio:(Prng.float rng 4.)));
    agree (Printf.sprintf "after subdivide %d" step);
    (* Perturb some actions so later collapses are partial. *)
    if step mod 3 = 0 then begin
      let ids = Rule_tree.live_ids t in
      let id = List.nth ids (Prng.int rng (List.length ids)) in
      Rule_tree.set_action t id
        { Action.multiple = 0.5; increment = 2.; intersend_ms = 1. }
    end;
    if step mod 4 = 0 then begin
      ignore (Rule_tree.collapse_agreeing t);
      agree (Printf.sprintf "after collapse %d" step)
    end
  done;
  ignore (Rule_tree.collapse_agreeing t);
  agree "after final collapse"

let test_subdivide_dead_id_raises () =
  let t = Rule_tree.create () in
  ignore (Rule_tree.subdivide t 0 ~at:(mem 100. 100. 2.));
  (* Rule 0 was retired by the subdivision. *)
  (try
     ignore (Rule_tree.subdivide t 0 ~at:(mem 10. 10. 1.5));
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_load_rejects_garbage () =
  let path = Filename.temp_file "rules" ".rules" in
  Out_channel.with_open_text path (fun oc -> output_string oc "(not a rule table)");
  (match Rule_tree.load path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted garbage");
  Sys.remove path

(* --- full-fidelity (checkpoint-grade) serialization ------------------ *)

let test_full_roundtrip_preserves_everything () =
  (* to_sexp/of_sexp renumber ids; the checkpoint codec must not: ids,
     capacity (retired entries included), epochs and leaf flags all feed
     the optimizer's future, so they must survive exactly. *)
  let rng = Prng.create 23 in
  let t = random_tree rng 4 in
  List.iteri (fun i id -> Rule_tree.set_epoch t id (i mod 5)) (Rule_tree.live_ids t);
  match Rule_tree.of_sexp_full (Rule_tree.to_sexp_full t) with
  | Error e -> Alcotest.failf "of_sexp_full rejected to_sexp_full: %s" e
  | Ok back ->
    Alcotest.(check int) "capacity preserved" (Rule_tree.capacity t)
      (Rule_tree.capacity back);
    Alcotest.(check (list int)) "live ids preserved" (Rule_tree.live_ids t)
      (Rule_tree.live_ids back);
    List.iter
      (fun id ->
        Alcotest.(check int)
          (Printf.sprintf "epoch of rule %d" id)
          (Rule_tree.epoch t id) (Rule_tree.epoch back id);
        Alcotest.(check bool)
          (Printf.sprintf "action of rule %d" id)
          true
          (Action.equal (Rule_tree.action t id) (Rule_tree.action back id)))
      (Rule_tree.live_ids t);
    Alcotest.(check string) "second serialization identical"
      (Remy_util.Sexp.to_string (Rule_tree.to_sexp_full t))
      (Remy_util.Sexp.to_string (Rule_tree.to_sexp_full back))

let test_full_rejects_tampered_action () =
  let t = random_tree (Prng.create 7) 2 in
  (match Rule_tree.live_ids t with
  | id :: _ ->
    Rule_tree.set_action t id
      { Action.multiple = infinity; increment = 0.; intersend_ms = 1. }
  | [] -> Alcotest.fail "no live rules");
  match Rule_tree.of_sexp_full (Rule_tree.to_sexp_full t) with
  | Ok _ -> Alcotest.fail "accepted a non-finite action"
  | Error _ -> ()

let test_validate_names_offending_rule () =
  let t = random_tree (Prng.create 8) 2 in
  (match Rule_tree.validate t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "healthy tree rejected: %s" e);
  let victim = List.nth (Rule_tree.live_ids t) 1 in
  Rule_tree.set_action t victim
    { Action.multiple = 1.; increment = Float.nan; intersend_ms = 1. };
  match Rule_tree.validate t with
  | Ok () -> Alcotest.fail "NaN action passed validation"
  | Error e ->
    let needle = Printf.sprintf "rule %d" victim in
    let n = String.length needle and h = String.length e in
    let rec scan i = i + n <= h && (String.sub e i n = needle || scan (i + 1)) in
    Alcotest.(check bool) (Printf.sprintf "error names %s" needle) true (scan 0)

let test_load_validated_rejects_out_of_bounds () =
  let t = Rule_tree.create () in
  Rule_tree.set_action t 0
    { Action.multiple = 1.; increment = 1e6; intersend_ms = 0.05 };
  let path = Filename.temp_file "rules" ".rules" in
  Rule_tree.save path t;
  (match Rule_tree.load_validated path with
  | Ok _ -> Alcotest.fail "accepted an out-of-bounds increment"
  | Error e ->
    Alcotest.(check bool) "mentions the path" true
      (String.length e > String.length path
      && String.sub e 0 (String.length path) = path));
  (* The unvalidated loader still reads it (back-compat for tooling
     that wants to inspect broken tables). *)
  (match Rule_tree.load path with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "plain load should not validate: %s" e);
  Sys.remove path

let prop_lookup_in_box =
  QCheck.Test.make ~name:"lookup returns a rule whose box contains the point"
    ~count:100
    QCheck.(triple small_nat (float_range 0. 16383.) (float_range 0. 16383.))
    (fun (seed, x, y) ->
      let t = random_tree (Prng.create (seed + 1)) 3 in
      let m = Memory.make ~ack_ewma:x ~send_ewma:y ~rtt_ratio:(Float.min x y) in
      let id = Rule_tree.lookup t m in
      let b = Rule_tree.box t id in
      let inside d v = v >= fst b.(d) && v < snd b.(d) in
      inside 0 (Memory.get m 0) && inside 1 (Memory.get m 1) && inside 2 (Memory.get m 2))

let tests =
  [
    Alcotest.test_case "singleton tree" `Quick test_singleton;
    Alcotest.test_case "subdivision partitions" `Quick test_subdivide_partitions;
    Alcotest.test_case "split point on high side" `Quick test_subdivide_boundary_point_is_high_side;
    Alcotest.test_case "degenerate split uses midpoint" `Quick test_subdivide_degenerate_point_uses_midpoint;
    Alcotest.test_case "dead parent retired" `Quick test_dead_parent_not_live;
    Alcotest.test_case "nested subdivision" `Quick test_nested_subdivision;
    Alcotest.test_case "epoch bookkeeping" `Quick test_epochs;
    Alcotest.test_case "action override" `Quick test_override;
    Alcotest.test_case "box accessor" `Quick test_box;
    Alcotest.test_case "collapse agreeing split" `Quick test_collapse_agreeing;
    Alcotest.test_case "collapse respects disagreement" `Quick test_collapse_respects_disagreement;
    Alcotest.test_case "collapse cascades" `Quick test_collapse_cascades;
    Alcotest.test_case "collapse partial" `Quick test_collapse_partial;
    Alcotest.test_case "num_rules tracks live ids" `Quick test_num_rules_tracks_live_ids;
    Alcotest.test_case "subdivide dead id raises" `Quick test_subdivide_dead_id_raises;
    Alcotest.test_case "serialization roundtrip" `Quick test_serialization_roundtrip;
    Alcotest.test_case "load rejects garbage" `Quick test_load_rejects_garbage;
    Alcotest.test_case "full roundtrip preserves ids/epochs/capacity" `Quick
      test_full_roundtrip_preserves_everything;
    Alcotest.test_case "full codec rejects tampered action" `Quick
      test_full_rejects_tampered_action;
    Alcotest.test_case "validate names the offending rule" `Quick
      test_validate_names_offending_rule;
    Alcotest.test_case "load_validated rejects out-of-bounds action" `Quick
      test_load_validated_rejects_out_of_bounds;
    QCheck_alcotest.to_alcotest prop_lookup_in_box;
  ]
