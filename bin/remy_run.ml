(* remy_run: simulate one dumbbell scenario and print per-scheme medians.

   Examples:
     remy_run --link 15 --rtt 150 --senders 8 --schemes newreno,vegas,remy:delta1
     remy_run --workload icsi --qdisc sfqcodel --loss 0.01
     remy_run --link-trace data/verizon-lte.trace --senders 4
     remy_run --trace out.jsonl --probe-interval 0.01 --schemes cubic *)

open Cmdliner
open Remy_scenarios
open Remy_sim

(* Load failures exit 1 with the loader's diagnostic instead of an
   uncaught exception backtrace.  Loaded tables go through the static
   analyzer before any simulation starts: an unsound table (coverage
   gap, overlapping rules, out-of-bounds action) is refused with the
   full report unless --force. *)
let resolve_scheme ~force ?idle_restart_s name =
  match String.index_opt name ':' with
  | Some i when String.sub name 0 i = "remy" ->
    let table = String.sub name (i + 1) (String.length name - i - 1) in
    (match Remy.Rule_tree.load (Tables.path table) with
    | Error msg ->
      Printf.eprintf "error: cannot load table %s: %s\n" table msg;
      exit 1
    | Ok tree ->
      let report = Remy_analysis.Verify.table tree in
      if not (Remy_analysis.Verify.sound report) then
        if force then
          Format.eprintf
            "warning: table %s is UNSOUND; simulating anyway under --force@.%a@."
            table Remy_analysis.Verify.pp report
        else begin
          Format.eprintf
            "error: table %s failed static verification:@.%a@.pass --force to \
             simulate it anyway@."
            table Remy_analysis.Verify.pp report;
          exit 1
        end;
      Schemes.remy ?idle_restart_s ~name:("Remy " ^ table) tree)
  | _ -> (
    match Schemes.by_name name with
    | Some s -> s
    | None ->
      Printf.eprintf "error: unknown scheme %S\n" name;
      exit 1)

let run link rtt_ms senders workload_kind mean_kb mean_on mean_off duration
    replications seed qdisc_kind capacity loss schemes topology link_trace
    trace_out probe_interval force metrics manifest faults_arg idle_restart_s =
  let t0 = Remy_obs.Clock.now_s () in
  let faults =
    match faults_arg with
    | None -> Remy_faults.Spec.empty
    | Some s -> (
      match Remy_faults.Spec.of_arg s with
      | Ok f -> f
      | Error msg ->
        Printf.eprintf "error: bad --faults spec: %s\n" msg;
        exit 1)
  in
  if metrics then Remy_obs.Metrics.enable ();
  let manifest0 = Remy_obs.Manifest.make ~tool:"remy_run" ~seed () in
  let write_manifest m =
    match manifest with
    | None -> ()
    | Some path -> (
      try Remy_obs.Manifest.write ~path m
      with Sys_error msg ->
        Printf.eprintf "warning: cannot write manifest: %s\n%!" msg)
  in
  write_manifest manifest0;
  let tracer =
    match trace_out with
    | None -> Remy_obs.Trace.off
    | Some path -> (
      try
        Remy_obs.Trace.make
          (Remy_obs.Sink.to_file ~columns:Remy_obs.Trace.columns path)
      with Sys_error msg ->
        Printf.eprintf "error: cannot open trace output: %s\n" msg;
        exit 1)
  in
  let service =
    match link_trace with
    | None -> Remy_cc.Dumbbell.Rate_mbps link
    | Some path -> (
      match Cell_trace.load path with
      | Ok t -> Remy_cc.Dumbbell.Trace t
      | Error msg ->
        Printf.eprintf "error: cannot load trace %s: %s\n" path msg;
        exit 1)
  in
  let workload =
    match workload_kind with
    | `Bytes -> Workload.by_bytes ~mean_bytes:(mean_kb *. 1e3) ~mean_off
    | `Time -> Workload.by_time ~mean_on ~mean_off
    | `Icsi -> Workload.icsi ~mean_off
    | `Saturating -> Workload.saturating
    | `Incast -> Workload.incast ~burst_bytes:(mean_kb *. 1e3) ~period:mean_off
  in
  let start =
    match workload_kind with
    | `Saturating | `Incast -> `Immediate
    | `Bytes | `Time | `Icsi -> `Off_draw
  in
  (match topology with
  | Some _ when link_trace <> None ->
    Printf.eprintf "error: --link-trace applies to the dumbbell only\n";
    exit 1
  | Some _ when loss > 0. ->
    Printf.eprintf "error: --loss applies to the dumbbell only\n";
    exit 1
  | _ -> ());
  let scenario =
    Scenario.make ~capacity ~service ~n:senders ~rtt:(rtt_ms /. 1e3) ~workload
      ~start ~duration ~replications ~base_seed:seed ()
  in
  let topo_scenario =
    Option.map
      (fun topology ->
        try
          Topologies.make ~capacity ~replications ~base_seed:seed
            ~link_mbps:link ~rtt_s:(rtt_ms /. 1e3) ~workload ~start ~topology
            ~n:senders ~duration ()
        with Invalid_argument msg ->
          Printf.eprintf "error: %s (known: %s)\n" msg
            (String.concat ", " Topologies.names);
          exit 1)
      topology
  in
  let schemes = List.map (resolve_scheme ~force ?idle_restart_s) schemes in
  List.iter
    (fun scheme ->
      if Remy_obs.Trace.is_on tracer then
        Remy_obs.Trace.note tracer ~now:0.
          [ ("scheme", Remy_obs.Record.Str scheme.Schemes.name) ];
      (* Override the scheme's qdisc pairing when asked, and wrap with
         stochastic loss when requested. *)
      let scheme =
        match qdisc_kind with
        | None -> scheme
        | Some q -> { scheme with Schemes.qdisc = q }
      in
      let summary =
        if loss > 0. then begin
          (* Scenario drives the plain pairing; loss needs direct runs. *)
          let points = ref [] in
          for rep = 0 to replications - 1 do
            let flows =
              Array.init senders (fun _ ->
                  {
                    Remy_cc.Dumbbell.cc = scheme.Schemes.factory;
                    rtt = rtt_ms /. 1e3;
                    workload;
                    start;
                  })
            in
            let r =
              Remy_cc.Dumbbell.run
                ~tracer:(if rep = 0 then tracer else Remy_obs.Trace.off)
                ?probe_interval
                {
                  Remy_cc.Dumbbell.service;
                  qdisc =
                    Remy_cc.Dumbbell.With_loss
                      (loss, Schemes.qdisc_spec scheme ~capacity);
                  flows;
                  duration;
                  seed = seed + rep;
                  min_rto = Remy_cc.Dumbbell.default_min_rto;
                }
                ~faults
            in
            Array.iter
              (fun (f : Metrics.flow_summary) ->
                if f.Metrics.on_time > 0. && f.Metrics.packets > 0 then
                  points :=
                    (f.Metrics.throughput_mbps, f.Metrics.mean_queueing_delay_ms)
                    :: !points)
              r.Remy_cc.Dumbbell.flows
          done;
          let tputs = Array.of_list (List.map fst !points) in
          let delays = Array.of_list (List.map snd !points) in
          Format.asprintf "%-16s %8.3f Mbps %10.2f ms   (with %.2f%% loss)"
            scheme.Schemes.name
            (if Array.length tputs > 0 then Remy_util.Stats.median tputs else 0.)
            (if Array.length delays > 0 then Remy_util.Stats.median delays else 0.)
            (loss *. 100.)
        end
        else
          match topo_scenario with
          | Some topo ->
            Format.asprintf "%a" Scenario.pp_summary_row
              (Topologies.run_scheme ~tracer ?probe_interval ~faults topo scheme)
          | None ->
            Format.asprintf "%a" Scenario.pp_summary_row
              (Scenario.run_scheme ~tracer ?probe_interval ~faults scenario scheme)
      in
      Format.printf "%s@." summary)
    schemes;
  Remy_obs.Trace.close tracer;
  (match trace_out with
  | Some path -> Format.printf "wrote event trace to %s@." path
  | None -> ());
  if metrics then begin
    (* Merged across every simulation this invocation ran. *)
    List.iter
      (fun (name, h) ->
        if Remy_obs.Histogram.count h > 0 then begin
          let s = Remy_obs.Histogram.summarize h in
          Format.printf
            "%-18s n=%-9d p50 %.4gs  p90 %.4gs  p99 %.4gs  p999 %.4gs@." name
            s.Remy_obs.Histogram.n s.Remy_obs.Histogram.p50
            s.Remy_obs.Histogram.p90 s.Remy_obs.Histogram.p99
            s.Remy_obs.Histogram.p999
        end)
      (Remy_obs.Metrics.all_merged ())
  end;
  write_manifest
    (Remy_obs.Manifest.finalize manifest0 ~status:"completed"
       ~wall_s:(Remy_obs.Clock.now_s () -. t0))

let qdisc_conv =
  Arg.enum
    [
      ("droptail", Schemes.Q_droptail);
      ("sfqcodel", Schemes.Q_sfqcodel);
      ("dctcp-red", Schemes.Q_dctcp_red);
      ("xcp", Schemes.Q_xcp);
    ]

let workload_conv =
  Arg.enum
    [
      ("bytes", `Bytes);
      ("time", `Time);
      ("icsi", `Icsi);
      ("saturating", `Saturating);
      ("incast", `Incast);
    ]

let cmd =
  let link = Arg.(value & opt float 15. & info [ "link" ] ~doc:"Link speed, Mbps.") in
  let rtt = Arg.(value & opt float 150. & info [ "rtt" ] ~doc:"RTT, ms.") in
  let senders = Arg.(value & opt int 8 & info [ "senders" ] ~doc:"Sender count.") in
  let workload =
    Arg.(
      value & opt workload_conv `Bytes
      & info [ "workload" ]
          ~doc:
            "bytes | time | icsi | saturating | incast (synchronized \
             --mean-kb bursts every --mean-off seconds).")
  in
  let mean_kb =
    Arg.(value & opt float 100. & info [ "mean-kb" ] ~doc:"Mean transfer, KB.")
  in
  let mean_on =
    Arg.(value & opt float 1. & info [ "mean-on" ] ~doc:"Mean on time, s.")
  in
  let mean_off =
    Arg.(value & opt float 0.5 & info [ "mean-off" ] ~doc:"Mean off time, s.")
  in
  let duration = Arg.(value & opt float 60. & info [ "duration" ] ~doc:"Seconds.") in
  let replications =
    Arg.(value & opt int 8 & info [ "replications" ] ~doc:"Replications.")
  in
  let seed = Arg.(value & opt int 7000 & info [ "seed" ] ~doc:"Base seed.") in
  let qdisc =
    Arg.(
      value
      & opt (some qdisc_conv) None
      & info [ "qdisc" ] ~doc:"Override the scheme's queue discipline.")
  in
  let capacity =
    Arg.(value & opt int 1000 & info [ "capacity" ] ~doc:"Buffer, packets.")
  in
  let loss =
    Arg.(value & opt float 0. & info [ "loss" ] ~doc:"Stochastic loss rate [0,1).")
  in
  let schemes =
    Arg.(
      value
      & opt (list string) [ "newreno"; "vegas"; "cubic"; "compound" ]
      & info [ "schemes" ] ~doc:"Comma-separated schemes (remy:<table> for RemyCCs).")
  in
  let topology =
    Arg.(
      value
      & opt (some string) None
      & info [ "topology" ]
          ~doc:
            "Run a named multi-bottleneck topology (parking-lot, \
             fat-tree-pod, incast) instead of the dumbbell.  --link scales \
             the bottleneck tier, --rtt the total propagation; the \
             scheme's qdisc pairing is replaced by per-link DropTail \
             buffers of --capacity packets.  RemyCC schemes run on the \
             structure-of-arrays fleet backend.")
  in
  let link_trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "link-trace" ] ~doc:"Cellular trace file (overrides --link).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ]
          ~doc:
            "Write a packet-level event trace to $(docv) (.csv for CSV, \
             anything else for JSONL).  Replication 0 of each scheme is \
             traced."
          ~docv:"OUT")
  in
  let probe_interval =
    Arg.(
      value
      & opt (some float) None
      & info [ "probe-interval" ]
          ~doc:
            "With --trace, also sample queue depth and per-flow \
             cwnd/pacing/srtt every $(docv) simulated seconds."
          ~docv:"SECONDS")
  in
  let force =
    Arg.(
      value & flag
      & info [ "force" ]
          ~doc:
            "Simulate RemyCC tables even when the static analyzer finds them \
             unsound (coverage gap, overlapping rules, out-of-bounds action).")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Record runtime histograms (simulated queueing delay, queue \
             sojourn) and print their percentiles after the runs.  Purely \
             observational: medians are bit-identical with or without.")
  in
  let manifest =
    Arg.(
      value
      & opt (some string) None
      & info [ "manifest" ]
          ~doc:
            "Write a run manifest to $(docv) at start (status running) and \
             rewrite it at exit with final counters and histogram summaries."
          ~docv:"PATH")
  in
  let faults =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ]
          ~doc:
            "Install a deterministic fault schedule on the bottleneck (or, \
             with linkN/ prefixes, on any link of a --topology run): a \
             preset name ($(b,flaky), $(b,bursty), $(b,jitter), \
             $(b,degrade), $(b,blackout)) or a raw spec such as \
             'outage:10+2+30;ge:0.01,0.25,0.5'.  Fault draws are seeded \
             from the run seed, so two identical invocations produce \
             byte-identical traces."
          ~docv:"SPEC")
  in
  let idle_restart =
    Arg.(
      value
      & opt (some float) None
      & info [ "idle-restart" ]
          ~doc:
            "RemyCC graceful degradation: after an ACK gap longer than \
             $(docv) seconds (e.g. a link outage), reset the sender's \
             memory EWMAs instead of feeding them one giant interarrival \
             sample.  Applies to remy:* schemes only."
          ~docv:"SECONDS")
  in
  Cmd.v
    (Cmd.info "remy_run" ~doc:"Run a dumbbell scenario across schemes")
    Term.(
      const run $ link $ rtt $ senders $ workload $ mean_kb $ mean_on $ mean_off
      $ duration $ replications $ seed $ qdisc $ capacity $ loss $ schemes
      $ topology $ link_trace $ trace_out $ probe_interval $ force $ metrics
      $ manifest $ faults $ idle_restart)

let () = exit (Cmd.eval cmd)
