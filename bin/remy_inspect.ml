(* remy_inspect: inspect RemyCC artifacts.

   Default command: pretty-print a trained rule table, optionally
   exercising it on design-range specimens to show which rules actually
   fire and where the memory lives.  The verify subcommand runs the
   static analyzer (partition proof, action bounds, bounded-window
   abstract interpretation) and exits nonzero on an unsound table.  The
   trace-summary subcommand aggregates an event trace written by
   remy_run --trace.

     remy_inspect data/delta1.rules
     remy_inspect data/delta1.rules --exercise
     remy_inspect verify data/delta1.rules --json verdict.jsonl
     remy_inspect trace-summary out.jsonl *)

open Cmdliner
open Remy

(* Simulate the table on a fixed draw of design-range specimens and
   return the per-rule usage tally (shared by --exercise reporting and
   verify's never-fired listing). *)
let exercise_tally tree =
  let model = Net_model.general ~sim_duration:8.0 () in
  let rng = Remy_util.Prng.create 4242 in
  let specimens = Net_model.draw_many model rng 8 in
  let tally = Tally.create ~capacity:(Rule_tree.capacity tree) ~seed:4242 () in
  let result =
    Evaluator.score ~tally ~domains:1
      ~objective:(Objective.proportional ~delta:1.0)
      ~queue_capacity:model.Net_model.queue_capacity
      ~duration:model.Net_model.sim_duration tree specimens
  in
  (tally, result)

let exercise tree =
  let tally, result = exercise_tally tree in
  let total =
    List.fold_left (fun acc id -> acc + Tally.count tally id) 0
      (Rule_tree.live_ids tree)
  in
  Format.printf
    "@.usage over 8 design-range specimens (mean objective %.4f, %d lookups):@."
    result.Evaluator.mean_score total;
  Format.printf "%6s %10s %8s   %s@." "rule" "uses" "share" "median memory seen";
  List.iter
    (fun id ->
      let uses = Tally.count tally id in
      let share =
        if total > 0 then 100. *. float_of_int uses /. float_of_int total else 0.
      in
      let median =
        match Tally.median_memory tally id with
        | Some m -> Format.asprintf "%a" Memory.pp m
        | None -> "-"
      in
      Format.printf "%6d %10d %7.2f%%   %s@." id uses share median)
    (List.sort
       (fun a b -> Int.compare (Tally.count tally b) (Tally.count tally a))
       (Rule_tree.live_ids tree))

let run file do_exercise =
  (* Validated load: domain coverage, finite in-bounds actions — a bad
     table fails fast here naming the offending rule. *)
  match Rule_tree.load_validated file with
  | Error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 1
  | Ok tree ->
    Format.printf "%a@." Rule_tree.pp tree;
    if do_exercise then exercise tree

let run_verify file do_exercise json =
  (* Plain load, not load_validated: verify's whole point is to analyze
     suspect tables and name their flaws, so validation failures must
     come back as a report, not a load error.  (Unparseable files still
     fail here.) *)
  match Rule_tree.load file with
  | Error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 1
  | Ok tree ->
    let tally = if do_exercise then Some (fst (exercise_tally tree)) else None in
    let report = Remy_analysis.Verify.table ?tally tree in
    Format.printf "%s@.%a@." file Remy_analysis.Verify.pp report;
    (match json with
    | None -> ()
    | Some path ->
      (try
         let sink = Remy_obs.Sink.to_file path in
         Remy_obs.Sink.emit sink
           (("table", Remy_obs.Record.Str file)
           :: Remy_analysis.Verify.to_record report);
         Remy_obs.Sink.close sink
       with Sys_error msg ->
         Printf.eprintf "error: cannot write verdict: %s\n" msg;
         exit 1));
    if not (Remy_analysis.Verify.sound report) then exit 1

let run_trace_summary file =
  match Remy_obs.Trace_summary.of_file file with
  | Error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 1
  | Ok summary -> Format.printf "%a@." Remy_obs.Trace_summary.pp summary

let run_robustness file link rtt_ms senders duration replications seed delta
    idle_restart json =
  match Rule_tree.load_validated file with
  | Error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 1
  | Ok tree ->
    let scheme =
      Remy_scenarios.Schemes.remy ?idle_restart_s:idle_restart
        ~name:(Filename.basename file) tree
    in
    let scenario =
      Remy_scenarios.Scenario.make
        ~service:(Remy_cc.Dumbbell.Rate_mbps link)
        ~n:senders ~rtt:(rtt_ms /. 1e3)
        ~workload:(Remy_sim.Workload.by_bytes ~mean_bytes:100e3 ~mean_off:0.5)
        ~duration ~replications ~base_seed:seed ()
    in
    let report =
      Remy_scenarios.Robustness.run
        ~objective:(Objective.proportional ~delta)
        scenario scheme
    in
    Format.printf "%a@." Remy_scenarios.Robustness.pp report;
    (match json with
    | None -> ()
    | Some path -> (
      try
        let sink = Remy_obs.Sink.to_file path in
        List.iter
          (Remy_obs.Sink.emit sink)
          (Remy_scenarios.Robustness.to_records report);
        Remy_obs.Sink.close sink;
        Format.printf "wrote robustness records to %s@." path
      with Sys_error msg ->
        Printf.eprintf "error: cannot write records: %s\n" msg;
        exit 1))

let table_term =
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Rule table.")
  in
  let ex =
    Arg.(
      value & flag
      & info [ "exercise" ] ~doc:"Simulate the table and report per-rule usage.")
  in
  Term.(const run $ file $ ex)

let table_cmd =
  Cmd.v (Cmd.info "table" ~doc:"Dump a RemyCC rule table (the default)") table_term

let verify_cmd =
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Rule table.")
  in
  let ex =
    Arg.(
      value & flag
      & info [ "exercise" ]
          ~doc:
            "Also simulate the table on design-range specimens and report \
             live rules that never fired.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ]
          ~doc:"Append the machine-readable verdict record to $(docv) (JSONL)."
          ~docv:"OUT")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Statically verify a rule table: prove the rules partition the \
          memory domain (exhaustive coverage, pairwise disjointness), check \
          every action's bounds, and bound every reachable congestion window \
          by abstract interpretation.  Exits 1 if the table is unsound.")
    Term.(const run_verify $ file $ ex $ json)

let trace_summary_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE" ~doc:"Event trace (.jsonl or .csv) from remy_run --trace.")
  in
  Cmd.v
    (Cmd.info "trace-summary"
       ~doc:"Aggregate an event trace into per-queue drop/mark/occupancy stats")
    Term.(const run_trace_summary $ file)

let robustness_cmd =
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Rule table.")
  in
  let link = Arg.(value & opt float 15. & info [ "link" ] ~doc:"Link speed, Mbps.") in
  let rtt = Arg.(value & opt float 150. & info [ "rtt" ] ~doc:"RTT, ms.") in
  let senders = Arg.(value & opt int 8 & info [ "senders" ] ~doc:"Sender count.") in
  let duration =
    Arg.(value & opt float 30. & info [ "duration" ] ~doc:"Seconds per run.")
  in
  let replications =
    Arg.(value & opt int 4 & info [ "replications" ] ~doc:"Seeds per cell.")
  in
  let seed = Arg.(value & opt int 7000 & info [ "seed" ] ~doc:"Base seed.") in
  let delta =
    Arg.(value & opt float 1. & info [ "delta" ] ~doc:"Objective delay weight.")
  in
  let idle_restart =
    Arg.(
      value
      & opt (some float) None
      & info [ "idle-restart" ]
          ~doc:
            "Enable the sender's idle-restart graceful degradation (reset \
             memory EWMAs after an ACK gap of $(docv) seconds) — rerun the \
             report with and without to quantify its effect."
          ~docv:"SECONDS")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ]
          ~doc:"Also write one flat record per sweep row to $(docv) (JSONL)."
          ~docv:"OUT")
  in
  Cmd.v
    (Cmd.info "robustness-report"
       ~doc:
         "Sweep a rule table across adversarial fault axes (outage, bursty \
          loss, reordering, duplication, corruption, rate cut) at three \
          intensities each and report the objective-score degradation \
          against the clean baseline — Fig. 6's design-range question asked \
          of faults, machine-readable.")
    Term.(
      const run_robustness $ file $ link $ rtt $ senders $ duration
      $ replications $ seed $ delta $ idle_restart $ json)

let cmd =
  Cmd.group ~default:table_term
    (Cmd.info "remy_inspect" ~doc:"Inspect RemyCC rule tables and event traces")
    [ table_cmd; verify_cmd; trace_summary_cmd; robustness_cmd ]

(* Keep the historical `remy_inspect FILE [--exercise]` spelling working:
   cmdliner groups dispatch on the first positional argument, so when it
   is not a known subcommand, route it to `table` explicitly. *)
let argv =
  let argv = Sys.argv in
  let is_command a =
    a = "table" || a = "verify" || a = "trace-summary" || a = "robustness-report"
  in
  let first_positional =
    Array.find_opt (fun a -> String.length a > 0 && a.[0] <> '-')
      (Array.sub argv 1 (Array.length argv - 1))
  in
  match first_positional with
  | Some a when not (is_command a) ->
    Array.append [| argv.(0); "table" |] (Array.sub argv 1 (Array.length argv - 1))
  | _ -> argv

let () = exit (Cmd.eval ~argv cmd)
