(* remy_inspect: inspect RemyCC artifacts.

   Default command: pretty-print a trained rule table, optionally
   exercising it on design-range specimens to show which rules actually
   fire and where the memory lives.  The trace-summary subcommand
   aggregates an event trace written by remy_run --trace.

     remy_inspect data/delta1.rules
     remy_inspect data/delta1.rules --exercise
     remy_inspect trace-summary out.jsonl *)

open Cmdliner
open Remy

let exercise tree =
  let model = Net_model.general ~sim_duration:8.0 () in
  let rng = Remy_util.Prng.create 4242 in
  let specimens = Net_model.draw_many model rng 8 in
  let tally = Tally.create ~capacity:(Rule_tree.capacity tree) ~seed:4242 () in
  let result =
    Evaluator.score ~tally ~domains:1
      ~objective:(Objective.proportional ~delta:1.0)
      ~queue_capacity:model.Net_model.queue_capacity
      ~duration:model.Net_model.sim_duration tree specimens
  in
  let total =
    List.fold_left (fun acc id -> acc + Tally.count tally id) 0
      (Rule_tree.live_ids tree)
  in
  Format.printf
    "@.usage over 8 design-range specimens (mean objective %.4f, %d lookups):@."
    result.Evaluator.mean_score total;
  Format.printf "%6s %10s %8s   %s@." "rule" "uses" "share" "median memory seen";
  List.iter
    (fun id ->
      let uses = Tally.count tally id in
      let share =
        if total > 0 then 100. *. float_of_int uses /. float_of_int total else 0.
      in
      let median =
        match Tally.median_memory tally id with
        | Some m -> Format.asprintf "%a" Memory.pp m
        | None -> "-"
      in
      Format.printf "%6d %10d %7.2f%%   %s@." id uses share median)
    (List.sort
       (fun a b -> compare (Tally.count tally b) (Tally.count tally a))
       (Rule_tree.live_ids tree))

let run file do_exercise =
  (* Validated load: domain coverage, finite in-bounds actions — a bad
     table fails fast here naming the offending rule. *)
  match Rule_tree.load_validated file with
  | Error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 1
  | Ok tree ->
    Format.printf "%a@." Rule_tree.pp tree;
    if do_exercise then exercise tree

let run_trace_summary file =
  match Remy_obs.Trace_summary.of_file file with
  | Error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 1
  | Ok summary -> Format.printf "%a@." Remy_obs.Trace_summary.pp summary

let table_term =
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Rule table.")
  in
  let ex =
    Arg.(
      value & flag
      & info [ "exercise" ] ~doc:"Simulate the table and report per-rule usage.")
  in
  Term.(const run $ file $ ex)

let table_cmd =
  Cmd.v (Cmd.info "table" ~doc:"Dump a RemyCC rule table (the default)") table_term

let trace_summary_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE" ~doc:"Event trace (.jsonl or .csv) from remy_run --trace.")
  in
  Cmd.v
    (Cmd.info "trace-summary"
       ~doc:"Aggregate an event trace into per-queue drop/mark/occupancy stats")
    Term.(const run_trace_summary $ file)

let cmd =
  Cmd.group ~default:table_term
    (Cmd.info "remy_inspect" ~doc:"Inspect RemyCC rule tables and event traces")
    [ table_cmd; trace_summary_cmd ]

(* Keep the historical `remy_inspect FILE [--exercise]` spelling working:
   cmdliner groups dispatch on the first positional argument, so when it
   is not a known subcommand, route it to `table` explicitly. *)
let argv =
  let argv = Sys.argv in
  let is_command a = a = "table" || a = "trace-summary" in
  let first_positional =
    Array.find_opt (fun a -> String.length a > 0 && a.[0] <> '-')
      (Array.sub argv 1 (Array.length argv - 1))
  in
  match first_positional with
  | Some a when not (is_command a) ->
    Array.append [| argv.(0); "table" |] (Array.sub argv 1 (Array.length argv - 1))
  | _ -> argv

let () = exit (Cmd.eval ~argv cmd)
