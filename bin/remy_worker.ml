(* remy_worker: a stateless distributed-training evaluator.

   Listens for a coordinator (remy_train --workers host:port,...), and
   evaluates whatever specimens it is sent.  All training state lives in
   the coordinator; this process holds only the last synced tree and the
   run's evaluation parameters, so killing and restarting a worker can
   never change training results.

   Examples:
     remy_worker --port 9090                  # serve forever
     remy_worker --port 9090 --once           # serve one coordinator, exit
     remy_worker --port 9090 --expect-config 1a2b...  # refuse other runs *)

open Cmdliner

let run port bind once expect_config quiet =
  let log msg = if not quiet then Printf.printf "remy_worker: %s\n%!" msg in
  (* A coordinator that vanishes mid-write must read as EOF, not kill
     the process. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let addr =
    try Unix.inet_addr_of_string bind
    with _ ->
      Printf.eprintf "remy_worker: bad bind address %S\n" bind;
      exit 2
  in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  (try Unix.bind sock (Unix.ADDR_INET (addr, port))
   with Unix.Unix_error (e, _, _) ->
     Printf.eprintf "remy_worker: cannot bind %s:%d: %s\n" bind port
       (Unix.error_message e);
     exit 2);
  Unix.listen sock 8;
  log
    (Printf.sprintf "listening on %s:%d (pid %d, protocol v%d)" bind port
       (Unix.getpid ()) Remy_dist.Wire.version);
  let serve_one () =
    let fd, peer = Unix.accept sock in
    (match peer with
    | Unix.ADDR_INET (a, p) ->
      log (Printf.sprintf "coordinator connected from %s:%d"
             (Unix.string_of_inet_addr a) p)
    | Unix.ADDR_UNIX _ -> log "coordinator connected");
    (try Remy_dist.Worker.serve ?expect_config ~log fd
     with Remy_dist.Worker.Protocol_error msg ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       Printf.eprintf "remy_worker: protocol error: %s\n%!" msg;
       exit 1);
    (try Unix.close fd with Unix.Unix_error _ -> ())
  in
  if once then serve_one ()
  else
    while true do
      serve_one ()
    done

let cmd =
  let port =
    Arg.(
      required
      & opt (some int) None
      & info [ "port" ] ~doc:"TCP port to listen on." ~docv:"PORT")
  in
  let bind =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "bind" ]
          ~doc:
            "Address to bind (default loopback; the protocol is \
             unauthenticated, so only widen this on a trusted network)."
          ~docv:"ADDR")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ] ~doc:"Serve one coordinator session, then exit.")
  in
  let expect_config =
    Arg.(
      value
      & opt (some string) None
      & info [ "expect-config" ]
          ~doc:
            "Only accept coordinators whose config fingerprint equals $(docv) \
             (as printed by remy_train); any other handshake is rejected and \
             the worker exits nonzero."
          ~docv:"HASH")
  in
  let quiet = Arg.(value & flag & info [ "quiet" ] ~doc:"No console chatter.") in
  Cmd.v
    (Cmd.info "remy_worker"
       ~doc:"Stateless evaluation worker for distributed RemyCC training")
    Term.(const run $ port $ bind $ once $ expect_config $ quiet)

let () = exit (Cmd.eval cmd)
