(* remy_train: design a RemyCC offline (the paper's "Remy" program).

   Examples:
     remy_train --model general --delta 1 -o data/delta1.rules
     remy_train --model datacenter --objective mpd -o data/datacenter.rules
     remy_train --telemetry train.jsonl -o remycc.rules *)

open Cmdliner
open Remy

let model_conv =
  Arg.enum
    [
      ("general", `General);
      ("onex", `Onex);
      ("tenx", `Tenx);
      ("datacenter", `Datacenter);
      ("coexist", `Coexist);
    ]

let objective_conv = Arg.enum [ ("proportional", `Proportional); ("mpd", `Mpd) ]

let run model objective delta epochs specimens multipliers rounds prune
    no_incremental domains wall seed sim_duration output telemetry quiet =
  let model =
    match model with
    | `General -> Net_model.general ?sim_duration ()
    | `Onex -> Net_model.onex ?sim_duration ()
    | `Tenx -> Net_model.tenx ?sim_duration ()
    | `Datacenter -> Net_model.datacenter ?sim_duration ()
    | `Coexist -> Net_model.coexist ?sim_duration ()
  in
  let objective =
    match objective with
    | `Proportional -> Objective.proportional ~delta
    | `Mpd -> Objective.min_potential_delay
  in
  let config =
    Optimizer.default_config ~specimens_per_step:specimens ~max_epochs:epochs
      ~candidate_multipliers:multipliers ~rounds_per_rule:rounds
      ~prune_agreeing:prune ~incremental:(not no_incremental) ?domains
      ~wall_budget_s:wall ~seed ~model ~objective ()
  in
  let sink =
    Option.map
      (fun path ->
        try Remy_obs.Sink.to_file path
        with Sys_error msg ->
          Printf.eprintf "error: cannot open telemetry output: %s\n" msg;
          exit 1)
      telemetry
  in
  let progress ev =
    (* Telemetry is written regardless of --quiet; the flag only
       silences the console narration. *)
    (match (ev, sink) with
    | Optimizer.Epoch_done e, Some s -> Remy_obs.Telemetry.write s e
    | _ -> ());
    if not quiet then Format.printf "%a@.%!" Optimizer.pp_event ev
  in
  if not quiet then
    Format.printf "designing RemyCC for model [%a], objective %a@.%!"
      Net_model.pp model Objective.pp objective;
  let t0 = Remy_obs.Clock.now_s () in
  let report = Optimizer.design ~progress config in
  Rule_tree.save output report.Optimizer.tree;
  Option.iter Remy_obs.Sink.close sink;
  Printf.printf
    "wrote %s: %d rules, %d epochs, %d improvements, %d subdivisions, %d \
     evaluations, final score %.4f, %.1f s\n%!"
    output
    (Rule_tree.num_rules report.Optimizer.tree)
    report.Optimizer.epochs report.Optimizer.improvements
    report.Optimizer.subdivisions report.Optimizer.evaluations
    report.Optimizer.final_score
    (Remy_obs.Clock.now_s () -. t0);
  (let sims = report.Optimizer.spec_sims and skips = report.Optimizer.spec_skips in
   if sims + skips > 0 then
     Printf.printf
       "incremental cache: %d specimen sims, %d skipped (%.0f%% hit rate)\n%!" sims
       skips
       (100. *. float_of_int skips /. float_of_int (sims + skips)));
  match telemetry with
  | Some path ->
    Printf.printf "wrote telemetry (%d epoch records) to %s\n%!"
      report.Optimizer.epochs path
  | None -> ()

let cmd =
  let model =
    Arg.(value & opt model_conv `General & info [ "model" ] ~doc:"Network model.")
  in
  let objective =
    Arg.(
      value
      & opt objective_conv `Proportional
      & info [ "objective" ] ~doc:"Objective: proportional or mpd (-1/throughput).")
  in
  let delta =
    Arg.(value & opt float 1.0 & info [ "delta" ] ~doc:"Delay weight delta.")
  in
  let epochs =
    Arg.(value & opt int 16 & info [ "epochs" ] ~doc:"Global epoch budget.")
  in
  let specimens =
    Arg.(value & opt int 16 & info [ "specimens" ] ~doc:"Specimens per step.")
  in
  let multipliers =
    Arg.(
      value
      & opt (list float) [ 1.; 8. ]
      & info [ "multipliers" ] ~doc:"Candidate increment magnitude ladder.")
  in
  let rounds =
    Arg.(
      value & opt int 40
      & info [ "rounds" ] ~doc:"Max improvement rounds per rule per visit.")
  in
  let prune =
    Arg.(
      value & flag
      & info [ "prune" ]
          ~doc:"Collapse subdivisions whose children's actions still agree.")
  in
  let no_incremental =
    Arg.(
      value & flag
      & info [ "no-incremental" ]
          ~doc:
            "Re-simulate every specimen for every candidate instead of reusing \
             cached scores for specimens the candidate's rule never touched \
             (results are identical; this only slows the search).")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ]
          ~doc:"Worker domains for the evaluation pool (default: cores - 1).")
  in
  let wall =
    Arg.(value & opt float 600. & info [ "wall-budget" ] ~doc:"Wall budget, s.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Root seed.") in
  let sim_duration =
    Arg.(
      value
      & opt (some float) None
      & info [ "sim-duration" ] ~doc:"Seconds simulated per specimen.")
  in
  let output =
    Arg.(value & opt string "remycc.rules" & info [ "o"; "output" ] ~doc:"Output file.")
  in
  let telemetry =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry" ]
          ~doc:
            "Write one structured JSONL record per design epoch to $(docv) \
             (written even under --quiet)."
          ~docv:"PATH")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress console progress.")
  in
  Cmd.v
    (Cmd.info "remy_train" ~doc:"Design a RemyCC congestion-control algorithm")
    Term.(
      const run $ model $ objective $ delta $ epochs $ specimens $ multipliers
      $ rounds $ prune $ no_incremental $ domains $ wall $ seed $ sim_duration
      $ output $ telemetry $ quiet)

let () = exit (Cmd.eval cmd)
