(* remy_train: design a RemyCC offline (the paper's "Remy" program).

   Examples:
     remy_train --model general --delta 1 -o data/delta1.rules
     remy_train --model datacenter --objective mpd -o data/datacenter.rules
     remy_train --telemetry train.jsonl -o remycc.rules
     remy_train --checkpoint ckpt -o remycc.rules          # crash-safe
     remy_train --checkpoint ckpt --resume -o remycc.rules # continue
     remy_train --verify -o remycc.rules   # statically check every round *)

open Cmdliner
open Remy

let model_conv =
  Arg.enum
    [
      ("general", `General);
      ("onex", `Onex);
      ("tenx", `Tenx);
      ("datacenter", `Datacenter);
      ("coexist", `Coexist);
    ]

let objective_conv = Arg.enum [ ("proportional", `Proportional); ("mpd", `Mpd) ]

(* Graceful interrupt: the first SIGINT/SIGTERM asks the optimizer to
   stop at the next round boundary (checkpoint + clean exit); a second
   signal aborts immediately.  OCaml runs handlers at safe points in the
   main thread, so the eprintf and exit here are fine. *)
let stop_flag = Atomic.make false

let install_signal_handlers () =
  let hits = Atomic.make 0 in
  let handle name (_ : int) =
    if Atomic.fetch_and_add hits 1 = 0 then begin
      Atomic.set stop_flag true;
      Printf.eprintf
        "\n\
         %s received: finishing the in-flight round, then checkpointing and \
         exiting (signal again to abort immediately)\n\
         %!"
        name
    end
    else exit 130
  in
  List.iter
    (fun (signo, name) ->
      try Sys.set_signal signo (Sys.Signal_handle (handle name))
      with Invalid_argument _ | Sys_error _ -> ())
    [ (Sys.sigint, "SIGINT"); (Sys.sigterm, "SIGTERM") ]

let run model topology objective delta epochs specimens multipliers rounds
    prune no_incremental domains wall seed sim_duration task_retries
    stall_timeout checkpoint_dir resume checkpoint_every stop_after output
    telemetry quiet verify minor_heap_mb dashboard profile manifest workers
    worker_timeout chaos_kill_worker =
  (* Training is allocation-sensitive: a larger nursery means fewer minor
     collections per simulated second on every worker domain (each domain
     gets its own minor heap of this size). *)
  (match minor_heap_mb with
  | Some mb -> Gc.set { (Gc.get ()) with Gc.minor_heap_size = mb * 1024 * 1024 / 8 }
  | None -> ());
  let model =
    match model with
    | `General -> Net_model.general ?sim_duration ()
    | `Onex -> Net_model.onex ?sim_duration ()
    | `Tenx -> Net_model.tenx ?sim_duration ()
    | `Datacenter -> Net_model.datacenter ?sim_duration ()
    | `Coexist -> Net_model.coexist ?sim_duration ()
  in
  (match topology with
  | Some name when Remy_cc.Topology.builder_of_name name = None ->
    Printf.eprintf "error: unknown topology %S (known: %s)\n" name
      (String.concat ", " Remy_cc.Topology.names);
    exit 1
  | _ -> ());
  let model = { model with Net_model.topology } in
  let objective =
    match objective with
    | `Proportional -> Objective.proportional ~delta
    | `Mpd -> Objective.min_potential_delay
  in
  let config =
    Optimizer.default_config ~specimens_per_step:specimens ~max_epochs:epochs
      ~candidate_multipliers:multipliers ~rounds_per_rule:rounds
      ~prune_agreeing:prune ~incremental:(not no_incremental) ?domains
      ~wall_budget_s:wall ~seed ~task_retries ?stall_timeout_s:stall_timeout
      ~model ~objective ()
  in
  let checkpoint =
    Option.map
      (fun dir -> { Optimizer.dir; every_rounds = checkpoint_every })
      checkpoint_dir
  in
  let snapshot =
    if not resume then None
    else
      match checkpoint_dir with
      | None ->
        Printf.eprintf "error: --resume requires --checkpoint DIR\n";
        exit 2
      | Some dir -> (
        match Checkpoint.load ~dir with
        | Error e ->
          Printf.eprintf "error: cannot resume: %s\n" e;
          exit 2
        | Ok snap -> (
          match
            Checkpoint.check_config snap
              ~config_hash:(Optimizer.config_fingerprint config)
          with
          | Error e ->
            Printf.eprintf "error: cannot resume: %s\n" e;
            exit 2
          | Ok () -> Some snap))
  in
  (* A resumed run appends to its telemetry file so the stream stays
     continuous across interruptions. *)
  let sink =
    Option.map
      (fun path ->
        try Remy_obs.Sink.to_file ~append:resume path
        with Sys_error msg ->
          Printf.eprintf "error: cannot open telemetry output: %s\n" msg;
          exit 1)
      telemetry
  in
  (* One monotonic reading anchors the whole run: telemetry wall_s (via
     ~now0), the manifest's wall_s, and the final console summary all
     measure from here, so the artifacts are directly comparable. *)
  let t0 = Remy_obs.Clock.now_s () in
  if Option.is_some profile then begin
    Remy_obs.Profiler.enable ();
    Remy_obs.Metrics.enable ()
  end;
  let worker_specs =
    Option.map
      (fun spec ->
        match Remy_dist.Coordinator.specs_of_string spec with
        | Ok specs -> specs
        | Error e ->
          Printf.eprintf "error: %s\n" e;
          exit 2)
      workers
  in
  let manifest_path =
    match manifest with Some p -> p | None -> output ^ ".manifest.json"
  in
  let dist_extras =
    match worker_specs with
    | None -> []
    | Some specs ->
      [
        ("dist_workers", Remy_obs.Record.Int (List.length specs));
        ( "dist_mode",
          Remy_obs.Record.Str
            (match specs with
            | Remy_dist.Coordinator.Fork :: _ -> "fork"
            | _ -> "socket") );
      ]
  in
  let manifest0 =
    Remy_obs.Manifest.make ~tool:"remy_train"
      ~config_fingerprint:(Optimizer.config_fingerprint config) ~seed
      ~extras:dist_extras ()
  in
  let write_manifest m =
    try Remy_obs.Manifest.write ~path:manifest_path m
    with Sys_error msg -> Printf.eprintf "warning: cannot write manifest: %s\n%!" msg
  in
  write_manifest manifest0;
  let finalize_manifest status =
    write_manifest
      (Remy_obs.Manifest.finalize manifest0 ~status
         ~wall_s:(Remy_obs.Clock.now_s () -. t0))
  in
  let dash =
    if dashboard then Some (Remy_obs.Dashboard.create ~wall_budget_s:wall ())
    else None
  in
  let rounds_this_run = ref 0 in
  let stop_requested () =
    Atomic.get stop_flag
    || match stop_after with Some n -> !rounds_this_run >= n | None -> false
  in
  let progress ev =
    (* Telemetry is written regardless of --quiet; the flag only
       silences the console narration. *)
    (match (ev, sink) with
    | Optimizer.Epoch_done e, Some s -> Remy_obs.Telemetry.write s e
    | Optimizer.Checkpoint_saved { path; epoch; rounds; duration_s }, Some s ->
      Remy_obs.Telemetry.write_robustness s
        (Remy_obs.Telemetry.Checkpoint_written { epoch; rounds; duration_s; path })
    | Optimizer.Resumed { epoch; rounds; elapsed_s }, Some s ->
      Remy_obs.Telemetry.write_robustness s
        (Remy_obs.Telemetry.Resumed_from
           {
             epoch;
             rounds;
             elapsed_s;
             path =
               (match checkpoint_dir with
               | Some dir -> Checkpoint.file ~dir
               | None -> "");
           })
    | Optimizer.Worker_retry { task; attempt; error }, Some s ->
      Remy_obs.Telemetry.write_robustness s
        (Remy_obs.Telemetry.Worker_retry { task; attempt; error })
    | _ -> ());
    (match (ev, dash) with
    | Optimizer.Epoch_done e, Some d -> Remy_obs.Dashboard.update d e
    | _ -> ());
    (match ev with Optimizer.Improving _ -> incr rounds_this_run | _ -> ());
    (* The dashboard owns the terminal: interleaved narration would tear
       its in-place redraw, so --dashboard implies --quiet narration. *)
    if (not quiet) && not dashboard then
      Format.printf "%a@.%!" Optimizer.pp_event ev
  in
  (* --verify: run the static analyzer over the live tree at every round
     boundary (the same consistent point where checkpoints are taken).
     Each check emits a table_verified telemetry event; an unsound table
     is reported immediately and fails the run with exit 4 after the
     final table is still written out for inspection. *)
  let verify_failures = ref 0 in
  let verify_round ~rounds tree =
    let rep = Remy_analysis.Verify.table tree in
    let sound = Remy_analysis.Verify.sound rep in
    Option.iter
      (fun s ->
        Remy_obs.Telemetry.write_robustness s
          (Remy_obs.Telemetry.Table_verified
             {
               rounds;
               rules = rep.Remy_analysis.Verify.live;
               sound;
               problems = List.length rep.Remy_analysis.Verify.problems;
               window_hi = rep.Remy_analysis.Verify.window_hi;
             }))
      sink;
    if not sound then begin
      incr verify_failures;
      Format.eprintf "after round %d the table is UNSOUND:@.%a@.%!" rounds
        Remy_analysis.Verify.pp rep
    end
  in
  (* Distributed mode: fork/connect the workers BEFORE anything spawns a
     domain (fork and running domains do not mix); design skips its
     in-process pool when handed a backend. *)
  let dist_event ev =
    (match (ev, sink) with
    | Remy_dist.Coordinator.Worker_joined { worker; addr; pid }, Some s ->
      Remy_obs.Telemetry.write_robustness s
        (Remy_obs.Telemetry.Worker_joined { worker; addr; pid })
    | Remy_dist.Coordinator.Worker_lost { worker; addr; reason; requeued }, Some s
      ->
      Remy_obs.Telemetry.write_robustness s
        (Remy_obs.Telemetry.Worker_lost { worker; addr; reason; requeued })
    | Remy_dist.Coordinator.Task_reissued { index; from_worker; to_worker }, Some s
      ->
      Remy_obs.Telemetry.write_robustness s
        (Remy_obs.Telemetry.Task_reissued { index; from_worker; to_worker })
    | _, None -> ());
    if (not quiet) && not dashboard then
      match ev with
      | Remy_dist.Coordinator.Worker_joined { worker; addr; pid } ->
        Printf.printf "worker %d joined (%s, pid %d)\n%!" worker addr pid
      | Remy_dist.Coordinator.Worker_lost { worker; addr; reason; requeued } ->
        Printf.printf "worker %d lost (%s): %s — %d task(s) requeued\n%!" worker
          addr reason requeued
      | Remy_dist.Coordinator.Task_reissued { index; from_worker; to_worker } ->
        Printf.printf "task %d reissued: worker %d -> worker %d\n%!" index
          from_worker to_worker
  in
  let coord =
    Option.map
      (fun specs ->
        try
          Remy_dist.Coordinator.create ~on_event:dist_event
            ?timeout_s:worker_timeout ?chaos_kill_after:chaos_kill_worker
            ~params:
              {
                Remy_dist.Wire.objective;
                queue_capacity = model.Net_model.queue_capacity;
                duration = model.Net_model.sim_duration;
                topology = model.Net_model.topology;
              }
            ~config_hash:(Optimizer.config_fingerprint config) ~workers:specs ()
        with Remy_dist.Coordinator.Dist_error e ->
          Printf.eprintf "error: distributed setup failed: %s\n" e;
          exit 3)
      worker_specs
  in
  let backend =
    Option.map
      (fun c ->
        Remy_dist.Coordinator.backend c
          ~incremental:config.Optimizer.incremental)
      coord
  in
  install_signal_handlers ();
  if not quiet then
    Format.printf "designing RemyCC for model [%a], objective %a@.%!" Net_model.pp
      model Objective.pp objective;
  let report =
    try
      Remy_obs.Profiler.span "remy_train" @@ fun () ->
      Optimizer.design ?backend ~progress ?checkpoint ?resume:snapshot
        ~stop_requested
        ?on_round:(if verify then Some verify_round else None)
        ~now0:t0 config
    with
    | Remy_dist.Coordinator.Dist_error msg ->
      Option.iter Remy_dist.Coordinator.shutdown coord;
      Option.iter Remy_obs.Sink.close sink;
      finalize_manifest "failed";
      Printf.eprintf "error: distributed run failed: %s\n" msg;
      (match checkpoint_dir with
      | Some dir ->
        Printf.eprintf "the last round-boundary checkpoint is intact: %s\n"
          (Checkpoint.file ~dir)
      | None -> ());
      exit 3
    | Par.Task_failed _ as e ->
      Option.iter Remy_obs.Sink.close sink;
      finalize_manifest "failed";
      Printf.eprintf "error: %s\n" (Printexc.to_string e);
      (match checkpoint_dir with
      | Some dir ->
        Printf.eprintf "the last round-boundary checkpoint is intact: %s\n"
          (Checkpoint.file ~dir)
      | None -> ());
      exit 3
    | Par.Stalled _ as e ->
      Option.iter Remy_obs.Sink.close sink;
      finalize_manifest "failed";
      Printf.eprintf "error: %s\n" (Printexc.to_string e);
      (match checkpoint_dir with
      | Some dir ->
        Printf.eprintf "the last round-boundary checkpoint is intact: %s\n"
          (Checkpoint.file ~dir)
      | None -> ());
      (* The wedged worker domain cannot be joined; exit without waiting. *)
      exit 3
  in
  Option.iter Remy_dist.Coordinator.shutdown coord;
  Option.iter Remy_obs.Dashboard.finish dash;
  Rule_tree.save output report.Optimizer.tree;
  Option.iter Remy_obs.Sink.close sink;
  Printf.printf
    "wrote %s: %d rules, %d epochs, %d improvements, %d subdivisions, %d \
     evaluations, final score %.4f, %.1f s\n\
     %!"
    output
    (Rule_tree.num_rules report.Optimizer.tree)
    report.Optimizer.epochs report.Optimizer.improvements
    report.Optimizer.subdivisions report.Optimizer.evaluations
    report.Optimizer.final_score
    (Remy_obs.Clock.now_s () -. t0);
  (let sims = report.Optimizer.spec_sims and skips = report.Optimizer.spec_skips in
   if sims + skips > 0 then
     Printf.printf
       "incremental cache: %d specimen sims, %d skipped (%.0f%% hit rate)\n%!" sims
       skips
       (100. *. float_of_int skips /. float_of_int (sims + skips)));
  (match telemetry with
  | Some path ->
    Printf.printf "wrote telemetry (%d epoch records) to %s\n%!"
      report.Optimizer.epochs path
  | None -> ());
  finalize_manifest
    (if report.Optimizer.interrupted then "interrupted" else "completed");
  (match profile with
  | Some path ->
    let roots = Remy_obs.Profiler.snapshot () in
    let dump p contents =
      try
        let oc = open_out p in
        output_string oc contents;
        close_out oc
      with Sys_error msg ->
        Printf.eprintf "warning: cannot write profile %s: %s\n%!" p msg
    in
    dump path (Remy_obs.Profiler.to_collapsed roots);
    dump (path ^ ".json") (Remy_obs.Profiler.to_json roots);
    Printf.printf "wrote profile: %s (collapsed stacks), %s.json (phase tree)\n%!"
      path path
  | None -> ());
  if report.Optimizer.interrupted then (
    match checkpoint_dir with
    | Some dir ->
      Printf.printf
        "interrupted after %d rounds; resume with: remy_train --checkpoint %s \
         --resume [same flags]\n\
         %!"
        report.Optimizer.rounds dir
    | None ->
      Printf.printf "interrupted after %d rounds (no --checkpoint: progress lost)\n%!"
        report.Optimizer.rounds);
  if verify then begin
    (* Final check on the exact tree that was written out (the round
       hook saw it at the last boundary; this covers the post-loop
       state too). *)
    let rep = Remy_analysis.Verify.table report.Optimizer.tree in
    if Remy_analysis.Verify.sound rep && !verify_failures = 0 then
      Printf.printf
        "verified: %d rules partition memory space, every action in bounds, \
         every reachable window <= %g\n\
         %!"
        rep.Remy_analysis.Verify.live rep.Remy_analysis.Verify.window_hi
    else begin
      if not (Remy_analysis.Verify.sound rep) then
        Format.eprintf "final table is UNSOUND:@.%a@.%!" Remy_analysis.Verify.pp
          rep;
      Printf.eprintf
        "error: static verification failed (%d unsound round(s)); table kept \
         at %s for inspection\n\
         %!"
        (!verify_failures + if Remy_analysis.Verify.sound rep then 0 else 1)
        output;
      exit 4
    end
  end

let cmd =
  let model =
    Arg.(value & opt model_conv `General & info [ "model" ] ~doc:"Network model.")
  in
  let topology =
    Arg.(
      value
      & opt (some string) None
      & info [ "topology" ]
          ~doc:
            "Evaluate design specimens on a named multi-bottleneck topology \
             (parking-lot, fat-tree-pod, incast) instead of the dumbbell; \
             the drawn link speed scales the bottleneck tier and the drawn \
             RTT the total propagation.")
  in
  let objective =
    Arg.(
      value
      & opt objective_conv `Proportional
      & info [ "objective" ] ~doc:"Objective: proportional or mpd (-1/throughput).")
  in
  let delta =
    Arg.(value & opt float 1.0 & info [ "delta" ] ~doc:"Delay weight delta.")
  in
  let epochs =
    Arg.(value & opt int 16 & info [ "epochs" ] ~doc:"Global epoch budget.")
  in
  let specimens =
    Arg.(value & opt int 16 & info [ "specimens" ] ~doc:"Specimens per step.")
  in
  let multipliers =
    Arg.(
      value
      & opt (list float) [ 1.; 8. ]
      & info [ "multipliers" ] ~doc:"Candidate increment magnitude ladder.")
  in
  let rounds =
    Arg.(
      value & opt int 40
      & info [ "rounds" ] ~doc:"Max improvement rounds per rule per visit.")
  in
  let prune =
    Arg.(
      value & flag
      & info [ "prune" ]
          ~doc:"Collapse subdivisions whose children's actions still agree.")
  in
  let no_incremental =
    Arg.(
      value & flag
      & info [ "no-incremental" ]
          ~doc:
            "Re-simulate every specimen for every candidate instead of reusing \
             cached scores for specimens the candidate's rule never touched \
             (results are identical; this only slows the search).")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ]
          ~doc:"Worker domains for the evaluation pool (default: cores - 1).")
  in
  let wall =
    Arg.(value & opt float 600. & info [ "wall-budget" ] ~doc:"Wall budget, s.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Root seed.") in
  let sim_duration =
    Arg.(
      value
      & opt (some float) None
      & info [ "sim-duration" ] ~doc:"Seconds simulated per specimen.")
  in
  let task_retries =
    Arg.(
      value & opt int 1
      & info [ "task-retries" ]
          ~doc:
            "Re-run a failing evaluation task up to $(docv) times before \
             aborting the run (tasks are deterministic, so retries cannot \
             change results)."
          ~docv:"N")
  in
  let stall_timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "stall-timeout" ]
          ~doc:
            "Watchdog: abort (leaving the last checkpoint intact) if no \
             evaluation task completes for $(docv) seconds."
          ~docv:"SECONDS")
  in
  let checkpoint_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ]
          ~doc:
            "Write crash-safe snapshots to $(docv)/checkpoint.sexp (atomic \
             temp-file + fsync + rename) after improvement rounds; resume \
             later with --resume."
          ~docv:"DIR")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Continue from the checkpoint in --checkpoint DIR.  The run \
             continues bit-identically to one that was never interrupted; \
             refuses (exit 2) if the checkpoint is corrupted, from another \
             version, or from a different model/objective/seed configuration.")
  in
  let checkpoint_every =
    Arg.(
      value & opt int 1
      & info [ "checkpoint-every" ]
          ~doc:
            "Checkpoint every $(docv) improvement rounds (epoch boundaries \
             and interrupts always checkpoint)."
          ~docv:"ROUNDS")
  in
  let stop_after =
    Arg.(
      value
      & opt (some int) None
      & info [ "stop-after-rounds" ]
          ~doc:
            "Stop (as if interrupted) after $(docv) improvement rounds in \
             this invocation — deterministic stand-in for SIGINT, used by \
             resume tests."
          ~docv:"N")
  in
  let output =
    Arg.(value & opt string "remycc.rules" & info [ "o"; "output" ] ~doc:"Output file.")
  in
  let telemetry =
    Arg.(
      value
      & opt (some string) None
      & info [ "telemetry" ]
          ~doc:
            "Write one structured JSONL record per design epoch to $(docv) \
             (written even under --quiet).  Crash-safe runs add \
             checkpoint_written / resumed_from / worker_retry event records; \
             resumed runs append."
          ~docv:"PATH")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress console progress.")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "Statically verify the table at every improvement-round boundary \
             (partition proof, action bounds, bounded-window abstract \
             interpretation).  Each check emits a table_verified telemetry \
             event; an unsound table fails the run with exit 4.")
  in
  let minor_heap_mb =
    Arg.(
      value
      & opt (some int) None
      & info [ "minor-heap-mb" ]
          ~doc:
            "Set the GC minor heap to $(docv) MiB before designing (worker \
             domains inherit the setting).  Purely a throughput knob; results \
             are identical either way."
          ~docv:"MIB")
  in
  let dashboard =
    Arg.(
      value & flag
      & info [ "dashboard" ]
          ~doc:
            "Live TTY dashboard: redraw score sparkline, evals/s, cache hit \
             rate, pool utilization and wall/ETA in place after every epoch \
             (implies quiet narration; telemetry still written).")
  in
  let profile =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile" ]
          ~doc:
            "Enable the span profiler and runtime histograms; at exit write \
             collapsed stacks (flamegraph.pl input) to $(docv) and the phase \
             tree as JSON to $(docv).json.  Purely observational: results \
             are bit-identical with or without."
          ~docv:"OUT")
  in
  let manifest =
    Arg.(
      value
      & opt (some string) None
      & info [ "manifest" ]
          ~doc:
            "Run-manifest path (default: <output>.manifest.json).  Written at \
             start (status running) and rewritten at exit with final \
             counters and histogram summaries."
          ~docv:"PATH")
  in
  let workers =
    Arg.(
      value
      & opt (some string) None
      & info [ "workers" ]
          ~doc:
            "Distribute evaluation across worker processes: an integer $(docv) \
             forks that many local workers; a comma-separated host:port list \
             connects to running $(b,remy_worker) instances.  Results are \
             bit-identical to a single-process run — the coordinator owns all \
             training state and reduces scores in fixed task order."
          ~docv:"SPEC")
  in
  let worker_timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "worker-timeout" ]
          ~doc:
            "Declare an unresponsive worker lost (its in-flight tasks are \
             reissued) after $(docv) seconds of silence (default 120)."
          ~docv:"SECONDS")
  in
  let chaos_kill_worker =
    Arg.(
      value
      & opt (some int) None
      & info [ "chaos-kill-worker" ]
          ~doc:
            "Fault-injection hook: SIGKILL one forked worker right after the \
             $(docv)-th task dispatch, exercising the reissue path (the run \
             must still produce bit-identical results).  Used by CI."
          ~docv:"N")
  in
  Cmd.v
    (Cmd.info "remy_train" ~doc:"Design a RemyCC congestion-control algorithm")
    Term.(
      const run $ model $ topology $ objective $ delta $ epochs $ specimens
      $ multipliers
      $ rounds $ prune $ no_incremental $ domains $ wall $ seed $ sim_duration
      $ task_retries $ stall_timeout $ checkpoint_dir $ resume $ checkpoint_every
      $ stop_after $ output $ telemetry $ quiet $ verify $ minor_heap_mb
      $ dashboard $ profile $ manifest $ workers $ worker_timeout
      $ chaos_kill_worker)

let () = exit (Cmd.eval cmd)
