(* remy_lint: determinism lint for the simulator and trainer sources.

   The whole system's contract is bit-reproducibility: same seed, same
   table, same results — across runs, machines and domain counts.  That
   contract dies quietly when a source file reaches for an ambient
   entropy or ordering source, so this lint parses every .ml file (via
   compiler-libs, no typing needed) and rejects:

     random        Stdlib.Random — unseeded or globally seeded PRNG;
                   simulations must draw from Remy_util.Prng streams
     wall-clock    Unix.gettimeofday / Unix.time / Sys.time — real time
                   leaking into logic; use Remy_obs.Clock (monotonic,
                   display-only) or simulated time
     poly-hash     Hashtbl.hash / Hashtbl.seeded_hash — structure-
                   dependent hashing that silently changes when a type
                   gains a field
     poly-compare  polymorphic [compare] (and [=]/[<>] passed as a
                   function value) — ordering that breaks on cyclic or
                   functional values and re-orders when types change;
                   use the monomorphic Float.compare / Int.compare /
                   String.compare

   Audited exceptions are annotated in source with a comment on the
   same or the preceding line:

     (* remy-lint: allow wall-clock *)

   which silences exactly that rule for that line (e.g. Par's stall
   watchdog measures real elapsed time on purpose).

   Usage: remy_lint [--rules LIST] [PATH ...]   (default: lib bin)
   Exit:  0 clean, 1 violations found, 2 parse/IO errors. *)

type violation = { file : string; line : int; rule : string; what : string }

(* --- rule matching ---------------------------------------------------- *)

let strip_stdlib = function "Stdlib" :: rest -> rest | path -> path

(* [applied] distinguishes `compare a b` / `a = b` (head of an
   application) from `compare` passed as a value to e.g. Array.sort —
   the equality operators are only hazardous as values (applied
   structural (=) on scalars is fine and ubiquitous), while [compare]
   and friends are hazardous either way. *)
let classify ~applied path =
  match strip_stdlib path with
  | "Random" :: _ -> Some ("random", "Stdlib.Random is not seedable per-stream")
  | [ "Unix"; ("gettimeofday" | "time") ] | [ "Sys"; "time" ] ->
    Some ("wall-clock", "real time must not reach simulation logic")
  | [ "Hashtbl"; ("hash" | "seeded_hash" | "hash_param") ] ->
    Some ("poly-hash", "polymorphic hashing is representation-dependent")
  | [ "compare" ] | [ "min" ] | [ "max" ] when not applied ->
    Some
      ( "poly-compare",
        "polymorphic comparison passed as a function; use Float.compare / \
         Int.compare / String.compare" )
  | [ "compare" ] ->
    Some
      ( "poly-compare",
        "polymorphic compare; use Float.compare / Int.compare / String.compare"
      )
  | [ ("=" | "<>" | "==" | "!=") ] when not applied ->
    Some
      ( "poly-compare",
        "polymorphic equality passed as a function; use an explicit \
         monomorphic equality" )
  | _ -> None

(* --- allowlist -------------------------------------------------------- *)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m > 0 && go 0

let allowlisted source_lines ~line ~rule =
  let tag = "remy-lint: allow " ^ rule in
  let has l =
    l >= 1 && l <= Array.length source_lines && contains_sub source_lines.(l - 1) tag
  in
  has line || has (line - 1)

(* --- parsetree walk --------------------------------------------------- *)

let lint_ast ~file ~source_lines ~rules ast =
  let violations = ref [] in
  let report ~applied (id : Longident.t Location.loc) =
    let path = try Longident.flatten id.txt with _ -> [] in
    match classify ~applied path with
    | Some (rule, what) when List.mem rule rules ->
      let line = id.loc.Location.loc_start.Lexing.pos_lnum in
      if not (allowlisted source_lines ~line ~rule) then
        violations :=
          { file; line; rule; what = String.concat "." path ^ ": " ^ what }
          :: !violations
    | _ -> ()
  in
  let super = Ast_iterator.default_iterator in
  let expr it (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_apply (({ pexp_desc = Pexp_ident id; _ } as fn), args) ->
      report ~applied:true id;
      (* Visit the arguments but not the head ident, which would
         otherwise re-report as a function value. *)
      it.Ast_iterator.attributes it fn.pexp_attributes;
      List.iter (fun (_, a) -> it.Ast_iterator.expr it a) args
    | Pexp_ident id ->
      report ~applied:false id;
      super.expr it e
    | _ -> super.expr it e
  in
  let it = { super with expr } in
  it.structure it ast;
  List.rev !violations

(* --- driver ----------------------------------------------------------- *)

let read_lines file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> Array.of_list (List.rev acc)
      in
      go [])

let lint_file ~rules file =
  let source_lines = read_lines file in
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Lexing.set_filename lexbuf file;
      match Parse.implementation lexbuf with
      | ast -> Ok (lint_ast ~file ~source_lines ~rules ast)
      | exception exn ->
        Error (Printf.sprintf "%s: cannot parse: %s" file (Printexc.to_string exn)))

let rec ml_files path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.filter (fun name -> name <> "" && name.[0] <> '_' && name.[0] <> '.')
    |> List.concat_map (fun name -> ml_files (Filename.concat path name))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

let all_rules = [ "random"; "wall-clock"; "poly-hash"; "poly-compare" ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse_args rules paths = function
    | [] -> (rules, List.rev paths)
    | "--rules" :: spec :: rest ->
      parse_args (String.split_on_char ',' spec) paths rest
    | "--help" :: _ | "-h" :: _ ->
      print_endline
        "usage: remy_lint [--rules random,wall-clock,poly-hash,poly-compare] \
         [PATH ...]";
      exit 0
    | arg :: rest -> parse_args rules (arg :: paths) rest
  in
  let rules, paths = parse_args all_rules [] args in
  (match List.filter (fun r -> not (List.mem r all_rules)) rules with
  | [] -> ()
  | bad ->
    Printf.eprintf "error: unknown rule(s): %s\n" (String.concat ", " bad);
    exit 2);
  let paths = if paths = [] then [ "lib"; "bin" ] else paths in
  let missing = List.filter (fun p -> not (Sys.file_exists p)) paths in
  if missing <> [] then begin
    Printf.eprintf "error: no such path: %s\n" (String.concat ", " missing);
    exit 2
  end;
  let files = List.concat_map ml_files paths in
  let errors = ref 0 and found = ref 0 in
  List.iter
    (fun file ->
      match lint_file ~rules file with
      | Error msg ->
        incr errors;
        Printf.eprintf "%s\n" msg
      | Ok vs ->
        List.iter
          (fun v ->
            incr found;
            Printf.printf "%s:%d: [%s] %s\n" v.file v.line v.rule v.what)
          vs)
    files;
  if !errors > 0 then exit 2;
  if !found > 0 then begin
    Printf.eprintf "%d determinism hazard(s) in %d file(s) scanned\n" !found
      (List.length files);
    exit 1
  end;
  Printf.printf "remy_lint: %d file(s) clean\n" (List.length files)
