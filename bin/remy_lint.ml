(* remy_lint — static analysis for determinism and domain safety.

   Thin CLI over Remy_lint_lib.Driver; all analyses live in lib/lint as
   registered passes.  Hand-rolled argument parsing (no cmdliner) so the
   linter stays runnable even when only compiler-libs is installed.

   Exit codes: 0 clean, 1 findings, 2 usage/operational error. *)

let usage () =
  prerr_endline
    {|usage: remy_lint [options] [paths...]

Lint OCaml sources for determinism and domain-safety hazards.
Paths are relative to the repo root and default to: lib bin

options:
  --root DIR        repo root (default: auto-detected from cwd via dune-project)
  --cmt-root DIR    directory scanned for .cmt files (repeatable;
                    default: ROOT/_build/default, or ROOT inside a build tree)
  --passes a,b      run only these passes
  --rules a,b       emit only these rules
  --allow-file F    suppression file relative to root (default: LINT_ALLOW)
  --no-allow-file   ignore any suppression file
  --require-cmt     fail (exit 2) when typed passes find no .cmt units
  --json            machine-readable output: one JSON record per finding,
                    then a summary record
  --list-passes     print the pass registry and exit

exit codes: 0 no findings; 1 findings; 2 usage or operational error|};
  exit 2

let list_passes () =
  List.iter
    (fun (p : Remy_lint_lib.Pass.t) ->
      Printf.printf "%-14s %s%s\n  rules: %s\n" p.name
        (if p.needs_cmt then "[cmt] " else "")
        p.description
        (String.concat ", " p.rules))
    Remy_lint_lib.Registry.all;
  exit 0

let split_commas s = String.split_on_char ',' s |> List.filter (fun x -> x <> "")

let () =
  let module D = Remy_lint_lib.Driver in
  let root = ref None in
  let cmt_roots = ref [] in
  let passes = ref None in
  let rules = ref None in
  let allow_file = ref (Some "LINT_ALLOW") in
  let require_cmt = ref false in
  let json = ref false in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--root" :: v :: rest ->
      root := Some v;
      parse rest
    | "--cmt-root" :: v :: rest ->
      cmt_roots := v :: !cmt_roots;
      parse rest
    | "--passes" :: v :: rest ->
      passes := Some (split_commas v);
      parse rest
    | "--rules" :: v :: rest ->
      rules := Some (split_commas v);
      parse rest
    | "--allow-file" :: v :: rest ->
      allow_file := Some v;
      parse rest
    | "--no-allow-file" :: rest ->
      allow_file := None;
      parse rest
    | "--require-cmt" :: rest ->
      require_cmt := true;
      parse rest
    | "--json" :: rest ->
      json := true;
      parse rest
    | "--list-passes" :: _ -> list_passes ()
    | ("--help" | "-h") :: _ -> usage ()
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
      Printf.eprintf "remy_lint: unknown option %s\n" arg;
      usage ()
    | path :: rest ->
      paths := path :: !paths;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let root =
    match !root with
    | Some r -> r
    | None -> (
      match D.autodetect_root (Sys.getcwd ()) with Some r -> r | None -> ".")
  in
  let cfg = D.default_config ~root in
  let cfg =
    {
      cfg with
      D.paths = (match List.rev !paths with [] -> cfg.D.paths | ps -> ps);
      passes = !passes;
      rules = !rules;
      allow_file = !allow_file;
      cmt_roots =
        (match List.rev !cmt_roots with [] -> cfg.D.cmt_roots | rs -> rs);
      require_cmt = !require_cmt;
    }
  in
  let result = D.run cfg in
  print_string (if !json then D.render_json result else D.render_text result);
  exit (D.exit_code result)
