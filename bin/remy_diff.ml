(* remy_diff: explain how two computer-generated algorithms differ
   (Section 6: "if two computer-generated algorithms differ, there is a
   reason").

     remy_diff data/delta01.rules data/delta10.rules *)

open Cmdliner

let run file_a file_b per_dim =
  match (Remy.Rule_tree.load_validated file_a, Remy.Rule_tree.load_validated file_b) with
  | Error msg, _ | _, Error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 1
  | Ok a, Ok b ->
    Format.printf "A = %s (%d rules)@.B = %s (%d rules)@.@." file_a
      (Remy.Rule_tree.num_rules a) file_b
      (Remy.Rule_tree.num_rules b);
    Format.printf "%a@." Remy.Table_diff.pp
      (Remy.Table_diff.compare_on_grid ~per_dim a b)

let cmd =
  let file index name =
    Arg.(
      required & pos index (some string) None & info [] ~docv:name ~doc:"Rule table.")
  in
  let per_dim =
    Arg.(value & opt int 12 & info [ "grid" ] ~doc:"Grid points per dimension.")
  in
  Cmd.v
    (Cmd.info "remy_diff" ~doc:"Compare two RemyCC rule tables")
    Term.(const run $ file 0 "A" $ file 1 "B" $ per_dim)

let () = exit (Cmd.eval cmd)
