(* remy_diff: explain how two computer-generated algorithms differ
   (Section 6: "if two computer-generated algorithms differ, there is a
   reason").

     remy_diff data/delta01.rules data/delta10.rules

   Exit codes (documented in the man page, relied on by the chaos-smoke
   CI job to distinguish "recovered table drifted" from "file is
   broken"):
     0  tables agree at every probed grid point
     1  tables differ
     2  a table failed to load or validate *)

open Cmdliner

let run file_a file_b per_dim =
  match (Remy.Rule_tree.load_validated file_a, Remy.Rule_tree.load_validated file_b) with
  | Error msg, _ | _, Error msg ->
    Printf.eprintf "error: %s\n" msg;
    2
  | Ok a, Ok b ->
    Format.printf "A = %s (%d rules)@.B = %s (%d rules)@.@." file_a
      (Remy.Rule_tree.num_rules a) file_b
      (Remy.Rule_tree.num_rules b);
    let report = Remy.Table_diff.compare_on_grid ~per_dim a b in
    Format.printf "%a@." Remy.Table_diff.pp report;
    if Remy.Table_diff.identical report then 0 else 1

let cmd =
  let file index name =
    Arg.(
      required & pos index (some string) None & info [] ~docv:name ~doc:"Rule table.")
  in
  let per_dim =
    Arg.(value & opt int 12 & info [ "grid" ] ~doc:"Grid points per dimension.")
  in
  let exits =
    [
      Cmd.Exit.info 0 ~doc:"the tables agree at every probed grid point";
      Cmd.Exit.info 1 ~doc:"the tables differ at one or more probed points";
      Cmd.Exit.info 2 ~doc:"a rule table failed to load or validate";
    ]
  in
  Cmd.v
    (Cmd.info "remy_diff" ~doc:"Compare two RemyCC rule tables" ~exits)
    Term.(const run $ file 0 "A" $ file 1 "B" $ per_dim)

let () = exit (Cmd.eval' cmd)
